package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by descriptive statistics that are undefined on an
// empty input.
var ErrEmpty = errors.New("stats: empty input")

// Mean returns the arithmetic mean of xs, or 0 if xs is empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum
}

// Variance returns the unbiased sample variance of xs (divisor n-1).
// It returns 0 for fewer than two observations.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs. It returns ErrEmpty when xs is empty.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the maximum of xs. It returns ErrEmpty when xs is empty.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Median returns the median of xs (average of the two central order
// statistics for even n). It returns ErrEmpty when xs is empty.
func Median(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2], nil
	}
	return (cp[n/2-1] + cp[n/2]) / 2, nil
}

// RelativeError returns |estimate-truth|/|truth|. When truth is zero it
// returns 0 if the estimate is also zero and +Inf otherwise, mirroring the
// convention used in the paper's evaluation (relative error is only reported
// for queries with a nonzero ground truth).
func RelativeError(estimate, truth float64) float64 {
	if truth == 0 {
		if estimate == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(estimate-truth) / math.Abs(truth)
}

// Jaccard returns the Jaccard similarity |a∩b| / |a∪b| of two string sets.
// Two empty sets have similarity 1 (they are identical).
func Jaccard(a, b map[string]bool) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inter := 0
	for k := range a {
		if b[k] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// NormalQuantile returns the quantile function (inverse CDF) of the standard
// normal distribution at probability p in (0,1), using Acklam's rational
// approximation (relative error below 1.15e-9 across the full range).
func NormalQuantile(p float64) float64 {
	if math.IsNaN(p) || p <= 0 || p >= 1 {
		switch {
		case p == 0:
			return math.Inf(-1)
		case p == 1:
			return math.Inf(1)
		default:
			return math.NaN()
		}
	}

	// Coefficients for Acklam's approximation.
	a := [6]float64{
		-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00,
	}
	b := [5]float64{
		-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01,
	}
	c := [6]float64{
		-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00,
	}
	d := [4]float64{
		7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00,
	}

	const plow = 0.02425
	const phigh = 1 - plow

	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= phigh:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}

	// One step of Halley refinement against the normal CDF sharpens the
	// approximation to near machine precision.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// NormalCDF returns the standard normal cumulative distribution function.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// ZCritical returns z_{α/2}, the two-sided normal critical value for
// confidence level 1-α. For example ZCritical(0.95) ≈ 1.96.
func ZCritical(confidence float64) float64 {
	if confidence <= 0 || confidence >= 1 {
		return math.NaN()
	}
	alpha := 1 - confidence
	return NormalQuantile(1 - alpha/2)
}

// Percentile returns the q-th percentile (q in [0,1]) of xs using linear
// interpolation between order statistics.
func Percentile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q <= 0 {
		return Min(xs)
	}
	if q >= 1 {
		return Max(xs)
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	pos := q * float64(len(cp)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return cp[lo], nil
	}
	frac := pos - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac, nil
}
