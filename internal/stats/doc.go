// Package stats provides the small statistical toolbox shared by the
// sampling, estimation and benchmarking layers: descriptive statistics,
// normal critical values, set similarity and deterministic RNG fan-out.
//
// Everything here is dependency-free and deterministic given a seed, which
// keeps the experiment harness reproducible run to run.
package stats
