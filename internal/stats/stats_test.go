package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanSimple(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
}

func TestMeanEmpty(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
}

func TestSum(t *testing.T) {
	if got := Sum([]float64{1.5, 2.5, -1}); got != 3 {
		t.Fatalf("Sum = %v, want 3", got)
	}
}

func TestVarianceKnown(t *testing.T) {
	// Sample variance of {2,4,4,4,5,5,7,9} with divisor n-1 is 32/7.
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	want := 32.0 / 7.0
	if got := Variance(xs); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Variance = %v, want %v", got, want)
	}
}

func TestVarianceDegenerate(t *testing.T) {
	if got := Variance([]float64{42}); got != 0 {
		t.Fatalf("Variance of single value = %v, want 0", got)
	}
	if got := Variance(nil); got != 0 {
		t.Fatalf("Variance(nil) = %v, want 0", got)
	}
}

func TestStdDevConstant(t *testing.T) {
	if got := StdDev([]float64{3, 3, 3, 3}); got != 0 {
		t.Fatalf("StdDev of constants = %v, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	mn, err := Min(xs)
	if err != nil || mn != -1 {
		t.Fatalf("Min = %v, %v; want -1, nil", mn, err)
	}
	mx, err := Max(xs)
	if err != nil || mx != 7 {
		t.Fatalf("Max = %v, %v; want 7, nil", mx, err)
	}
	if _, err := Min(nil); err != ErrEmpty {
		t.Fatalf("Min(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := Max(nil); err != ErrEmpty {
		t.Fatalf("Max(nil) err = %v, want ErrEmpty", err)
	}
}

func TestMedian(t *testing.T) {
	got, err := Median([]float64{5, 1, 3})
	if err != nil || got != 3 {
		t.Fatalf("odd Median = %v, %v; want 3", got, err)
	}
	got, err = Median([]float64{4, 1, 3, 2})
	if err != nil || got != 2.5 {
		t.Fatalf("even Median = %v, %v; want 2.5", got, err)
	}
	if _, err := Median(nil); err != ErrEmpty {
		t.Fatalf("Median(nil) err = %v, want ErrEmpty", err)
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Median(xs); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Median mutated input: %v", xs)
	}
}

func TestRelativeError(t *testing.T) {
	if got := RelativeError(110, 100); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("RelativeError = %v, want 0.1", got)
	}
	if got := RelativeError(0, 0); got != 0 {
		t.Fatalf("RelativeError(0,0) = %v, want 0", got)
	}
	if got := RelativeError(1, 0); !math.IsInf(got, 1) {
		t.Fatalf("RelativeError(1,0) = %v, want +Inf", got)
	}
	if got := RelativeError(-90, -100); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("RelativeError negative truth = %v, want 0.1", got)
	}
}

func TestJaccard(t *testing.T) {
	a := map[string]bool{"x": true, "y": true}
	b := map[string]bool{"y": true, "z": true}
	if got := Jaccard(a, b); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Fatalf("Jaccard = %v, want 1/3", got)
	}
	if got := Jaccard(nil, nil); got != 1 {
		t.Fatalf("Jaccard(∅,∅) = %v, want 1", got)
	}
	if got := Jaccard(a, nil); got != 0 {
		t.Fatalf("Jaccard(a,∅) = %v, want 0", got)
	}
}

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959963984540054},
		{0.95, 1.6448536269514722},
		{0.995, 2.5758293035489004},
		{0.025, -1.959963984540054},
	}
	for _, c := range cases {
		if got := NormalQuantile(c.p); math.Abs(got-c.want) > 1e-8 {
			t.Errorf("NormalQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestNormalQuantileEdges(t *testing.T) {
	if got := NormalQuantile(0); !math.IsInf(got, -1) {
		t.Fatalf("NormalQuantile(0) = %v, want -Inf", got)
	}
	if got := NormalQuantile(1); !math.IsInf(got, 1) {
		t.Fatalf("NormalQuantile(1) = %v, want +Inf", got)
	}
	if got := NormalQuantile(-0.1); !math.IsNaN(got) {
		t.Fatalf("NormalQuantile(-0.1) = %v, want NaN", got)
	}
}

// Property: NormalCDF(NormalQuantile(p)) == p across the open interval.
func TestNormalQuantileRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := NewRand(seed)
		p := r.Float64()*0.998 + 0.001 // keep away from 0/1
		x := NormalQuantile(p)
		return math.Abs(NormalCDF(x)-p) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestZCritical(t *testing.T) {
	if got := ZCritical(0.95); math.Abs(got-1.959963984540054) > 1e-8 {
		t.Fatalf("ZCritical(0.95) = %v, want 1.96", got)
	}
	if got := ZCritical(0.90); math.Abs(got-1.6448536269514722) > 1e-8 {
		t.Fatalf("ZCritical(0.90) = %v, want 1.645", got)
	}
	if !math.IsNaN(ZCritical(0)) || !math.IsNaN(ZCritical(1.2)) {
		t.Fatal("ZCritical should be NaN outside (0,1)")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	got, err := Percentile(xs, 0.5)
	if err != nil || got != 3 {
		t.Fatalf("Percentile 0.5 = %v, %v; want 3", got, err)
	}
	got, err = Percentile(xs, 0.25)
	if err != nil || got != 2 {
		t.Fatalf("Percentile 0.25 = %v, %v; want 2", got, err)
	}
	got, err = Percentile(xs, 0)
	if err != nil || got != 1 {
		t.Fatalf("Percentile 0 = %v, %v; want 1", got, err)
	}
	got, err = Percentile(xs, 1)
	if err != nil || got != 5 {
		t.Fatalf("Percentile 1 = %v, %v; want 5", got, err)
	}
	if _, err := Percentile(nil, 0.5); err != ErrEmpty {
		t.Fatalf("Percentile(nil) err = %v, want ErrEmpty", err)
	}
}

func TestWeightedIndexDegenerate(t *testing.T) {
	r := NewRand(1)
	if got := WeightedIndex(r, nil); got != -1 {
		t.Fatalf("WeightedIndex(empty) = %d, want -1", got)
	}
	if got := WeightedIndex(r, []float64{0, 0}); got != -1 {
		t.Fatalf("WeightedIndex(zeros) = %d, want -1", got)
	}
	if got := WeightedIndex(r, []float64{1, -1}); got != -1 {
		t.Fatalf("WeightedIndex(negative) = %d, want -1", got)
	}
	if got := WeightedIndex(r, []float64{0, 5, 0}); got != 1 {
		t.Fatalf("WeightedIndex(single mass) = %d, want 1", got)
	}
}

func TestWeightedIndexDistribution(t *testing.T) {
	r := NewRand(7)
	w := []float64{1, 3}
	counts := [2]int{}
	const n = 40000
	for i := 0; i < n; i++ {
		counts[WeightedIndex(r, w)]++
	}
	frac := float64(counts[1]) / n
	if math.Abs(frac-0.75) > 0.02 {
		t.Fatalf("weight-3 category frequency = %v, want ≈0.75", frac)
	}
}

func TestAliasDegenerate(t *testing.T) {
	if NewAlias(nil) != nil {
		t.Fatal("NewAlias(empty) should be nil")
	}
	if NewAlias([]float64{0, 0}) != nil {
		t.Fatal("NewAlias(zeros) should be nil")
	}
	if NewAlias([]float64{-1, 2}) != nil {
		t.Fatal("NewAlias(negative) should be nil")
	}
	// Near-zero weights: the normalisation must survive weights at the edge
	// of floating-point underflow — the table builds, every draw lands in
	// range, and a dominant weight still dominates.
	tiny := NewAlias([]float64{1e-300, 1e-300, 1e-300})
	if tiny == nil {
		t.Fatal("NewAlias(tiny uniform) failed to build")
	}
	r := NewRand(3)
	for i := 0; i < 1000; i++ {
		if k := tiny.Draw(r); k < 0 || k > 2 {
			t.Fatalf("tiny-weight draw out of range: %d", k)
		}
	}
	skew := NewAlias([]float64{1e-300, 1})
	if skew == nil {
		t.Fatal("NewAlias(tiny vs dominant) failed to build")
	}
	dominant := 0
	for i := 0; i < 1000; i++ {
		if skew.Draw(r) == 1 {
			dominant++
		}
	}
	if dominant < 990 {
		t.Fatalf("dominant weight drew only %d/1000 against a 1e-300 rival", dominant)
	}
}

// The splitmix generator behind the flattened bootstrap: deterministic per
// seed, and its Lemire-style bounded draw stays in range over small and
// large bounds alike.
func TestSplitmixDeterministicBoundedDraws(t *testing.T) {
	a, b := NewSplitmix(42), NewSplitmix(42)
	for i := 0; i < 1000; i++ {
		if x, y := a.Next(), b.Next(); x != y {
			t.Fatalf("same-seed streams diverged at step %d: %d vs %d", i, x, y)
		}
	}
	c := NewSplitmix(43)
	if a.Next() == c.Next() {
		t.Fatal("different seeds produced identical output")
	}
	for _, n := range []int{1, 2, 3, 17, 1 << 20} {
		s := NewSplitmix(7)
		for i := 0; i < 2000; i++ {
			if k := s.Intn(n); k < 0 || k >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, k)
			}
		}
	}
	// Coarse uniformity: a bounded draw over 4 buckets stays within a few
	// percent of uniform over a long stream.
	s := NewSplitmix(9)
	counts := [4]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[s.Intn(4)]++
	}
	for i, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-0.25) > 0.02 {
			t.Fatalf("bucket %d frequency %v, want ≈0.25", i, frac)
		}
	}
}

func TestAliasDistribution(t *testing.T) {
	w := []float64{0.1, 0.2, 0.3, 0.4}
	a := NewAlias(w)
	if a == nil || a.N() != 4 {
		t.Fatal("alias table not built")
	}
	r := NewRand(11)
	counts := make([]int, 4)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[a.Draw(r)]++
	}
	for i, wi := range w {
		frac := float64(counts[i]) / n
		if math.Abs(frac-wi) > 0.01 {
			t.Errorf("category %d frequency = %v, want ≈%v", i, frac, wi)
		}
	}
}

// Property: for random weight vectors, alias sampling matches linear
// weighted sampling in distribution (coarse chi-square style check).
func TestAliasMatchesWeightedIndex(t *testing.T) {
	f := func(seed int64) bool {
		r := NewRand(seed)
		n := 2 + r.Intn(8)
		w := make([]float64, n)
		for i := range w {
			w[i] = r.Float64() + 0.01
		}
		a := NewAlias(w)
		if a == nil {
			return false
		}
		total := Sum(w)
		const draws = 20000
		counts := make([]int, n)
		for i := 0; i < draws; i++ {
			counts[a.Draw(r)]++
		}
		for i := range w {
			want := w[i] / total
			got := float64(counts[i]) / draws
			if math.Abs(got-want) > 0.05 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := NewRand(5)
	a := Fork(parent)
	b := Fork(parent)
	// Two forks must produce different streams.
	same := true
	for i := 0; i < 10; i++ {
		if a.Int63() != b.Int63() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("forked generators produced identical streams")
	}
}

func TestNewRandDeterminism(t *testing.T) {
	a, b := NewRand(99), NewRand(99)
	for i := 0; i < 16; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same seed produced different streams")
		}
	}
}
