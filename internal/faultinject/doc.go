// Package faultinject is a deterministic fault-injection registry for the
// chaos test suites: production code calls Fire at named points ("wal.sync",
// "core.validate", …) and tests arm those points with error or panic faults
// triggered by call count and/or seeded probability.
//
// The disabled fast path is a single atomic pointer load, so instrumented
// sites stay in hot paths (the WAL writer and syncer, the query validation
// loop) at no measurable cost. Trigger decisions are fully deterministic
// under the Activate seed: each armed fault owns a seeded random stream, so
// a failing chaos run replays exactly.
//
// The registry is process-global on purpose — faults must reach code deep
// inside other packages without threading test-only hooks through every
// constructor. Tests that Activate a plan must not run in parallel with
// each other.
package faultinject
