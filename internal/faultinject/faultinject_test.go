package faultinject

import (
	"errors"
	"sync"
	"testing"
)

func TestDisabledIsNoop(t *testing.T) {
	if err := Fire("anything"); err != nil {
		t.Fatalf("inactive Fire returned %v", err)
	}
	if Enabled() {
		t.Fatal("Enabled with no plan active")
	}
}

func TestCountAndAfter(t *testing.T) {
	defer Activate(1, Fault{Point: "p", After: 2, Count: 3})()
	var fired int
	for i := 0; i < 10; i++ {
		if Fire("p") != nil {
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("fired %d times, want 3 (after 2, count 3)", fired)
	}
	// The first two calls were skipped, the next three fired.
	deactivate := Activate(1, Fault{Point: "p", After: 1, Count: 1})
	if Fire("p") != nil {
		t.Fatal("fired on the skipped first call")
	}
	if Fire("p") == nil {
		t.Fatal("did not fire on the first eligible call")
	}
	deactivate()
	if err := Fire("p"); err != nil {
		t.Fatalf("fired after deactivation: %v", err)
	}
}

func TestTypedError(t *testing.T) {
	sentinel := errors.New("disk on fire")
	defer Activate(1, Fault{Point: "p", Err: sentinel})()
	if err := Fire("p"); !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want the armed sentinel", err)
	}
	// The default payload wraps ErrInjected.
	defer Activate(1, Fault{Point: "q"})()
	if err := Fire("q"); !errors.Is(err, ErrInjected) {
		t.Fatalf("got %v, want ErrInjected", err)
	}
}

func TestPanicFault(t *testing.T) {
	defer Activate(1, Fault{Point: "p", Panic: "boom"})()
	defer func() {
		if v := recover(); v != "boom" {
			t.Fatalf("recovered %v, want boom", v)
		}
	}()
	_ = Fire("p")
	t.Fatal("Fire did not panic")
}

func TestProbabilityIsDeterministic(t *testing.T) {
	run := func() []bool {
		defer Activate(42, Fault{Point: "p", Prob: 0.3})()
		out := make([]bool, 200)
		for i := range out {
			out[i] = Fire("p") != nil
		}
		return out
	}
	a, b := run(), run()
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at call %d under the same seed", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("probability 0.3 fired %d/%d times", fired, len(a))
	}
}

func TestConcurrentFire(t *testing.T) {
	defer Activate(7, Fault{Point: "p", Count: 100})()
	var wg sync.WaitGroup
	var mu sync.Mutex
	fired := 0
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if Fire("p") != nil {
					mu.Lock()
					fired++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if fired != 100 {
		t.Fatalf("count-capped fault fired %d times across goroutines, want exactly 100", fired)
	}
}
