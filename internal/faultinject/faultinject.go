package faultinject

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"sync/atomic"
)

// ErrInjected is the default error payload of an error-action fault; every
// injected error wraps it, so tests can assert provenance with errors.Is.
var ErrInjected = errors.New("faultinject: injected fault")

// Fault arms one injection point. Exactly one of Err and Panic should be
// set: Fire returns Err, or panics with Panic. A Fault with neither acts as
// an error fault wrapping ErrInjected.
type Fault struct {
	// Point names the instrumented site, e.g. "wal.sync".
	Point string
	// After skips the first After eligible calls before the fault can fire.
	After int
	// Count caps how many times the fault fires (0 = unlimited).
	Count int
	// Prob fires the fault on each eligible call with this probability,
	// drawn from the plan's seeded per-point stream (0 = fire always).
	Prob float64
	// Err is returned by Fire when the fault triggers.
	Err error
	// Panic, when non-nil, makes Fire panic with this value instead of
	// returning an error.
	Panic any
}

// state is one armed fault's trigger bookkeeping.
type state struct {
	mu    sync.Mutex
	f     Fault
	calls int // eligible calls observed
	fired int
	rng   *rand.Rand
}

// plan is an immutable set of armed points, swapped in atomically so the
// disabled fast path is a single pointer load.
type plan struct {
	points map[string][]*state
}

var active atomic.Pointer[plan]

// Activate arms the given faults and returns a deactivation function.
// Trigger decisions are deterministic under seed: each (point, index) pair
// gets its own seeded stream, so a test replays identically however many
// goroutines race through the points. Activate replaces any previous plan;
// the returned func restores the disabled state (it does not restore a
// previous plan — scopes must not nest).
func Activate(seed int64, faults ...Fault) (deactivate func()) {
	p := &plan{points: map[string][]*state{}}
	for i, f := range faults {
		if f.Point == "" {
			panic("faultinject: fault without a point name")
		}
		h := fnv.New64a()
		fmt.Fprintf(h, "%s/%d", f.Point, i)
		st := &state{f: f, rng: rand.New(rand.NewSource(seed ^ int64(h.Sum64())))}
		p.points[f.Point] = append(p.points[f.Point], st)
	}
	active.Store(p)
	return func() { active.Store(nil) }
}

// Enabled reports whether any fault plan is active — for sites whose
// injection needs setup beyond the Fire call itself.
func Enabled() bool { return active.Load() != nil }

// Fire is the instrumented-site hook: a no-op returning nil while no plan
// is active (one atomic load — cheap enough for hot paths). When an armed
// fault at this point triggers, Fire panics with its Panic value or returns
// its error (wrapping ErrInjected when none was configured).
func Fire(point string) error {
	p := active.Load()
	if p == nil {
		return nil
	}
	for _, st := range p.points[point] {
		if err, fired := st.fire(); fired {
			return err
		}
	}
	return nil
}

// fire advances one fault's trigger state; it reports whether the fault
// fired and, for error faults, the error to return. Panic faults do not
// return.
func (st *state) fire() (error, bool) {
	st.mu.Lock()
	f := st.f
	st.calls++
	if st.calls <= f.After {
		st.mu.Unlock()
		return nil, false
	}
	if f.Count > 0 && st.fired >= f.Count {
		st.mu.Unlock()
		return nil, false
	}
	if f.Prob > 0 && st.rng.Float64() >= f.Prob {
		st.mu.Unlock()
		return nil, false
	}
	st.fired++
	st.mu.Unlock()
	if f.Panic != nil {
		panic(f.Panic)
	}
	if f.Err != nil {
		return f.Err, true
	}
	return fmt.Errorf("%w at %s", ErrInjected, f.Point), true
}
