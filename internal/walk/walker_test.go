package walk

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"kgaq/internal/embedding/embtest"
	"kgaq/internal/kg"
	"kgaq/internal/kg/kgtest"
	"kgaq/internal/semsim"
	"kgaq/internal/stats"
)

func figure1Walker(t *testing.T, cfg Config) (*Walker, *kg.Graph) {
	t.Helper()
	g := kgtest.Figure1()
	calc, err := semsim.NewCalculator(g, embtest.Figure1Model(g), 0)
	if err != nil {
		t.Fatal(err)
	}
	w, err := New(g, calc, g.NodeByName("Germany"), g.PredByName("product"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w, g
}

func TestNewErrors(t *testing.T) {
	g := kgtest.Figure1()
	calc, err := semsim.NewCalculator(g, embtest.Figure1Model(g), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(g, nil, 0, 0, Config{}); err == nil {
		t.Fatal("nil calculator accepted")
	}
	if _, err := New(g, calc, -1, 0, Config{}); err == nil {
		t.Fatal("bad start accepted")
	}
	if _, err := New(g, calc, 0, kg.PredID(999), Config{}); err == nil {
		t.Fatal("bad predicate accepted")
	}
}

func TestTransitionRowsSumToOne(t *testing.T) {
	w, _ := figure1Walker(t, Config{N: 3})
	for i := range w.nodes {
		_, probs := w.row(i)
		sum := 0.0
		for _, p := range probs {
			if p < 0 {
				t.Fatalf("negative transition probability on row %d", i)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
}

func TestCSRShape(t *testing.T) {
	w, _ := figure1Walker(t, Config{N: 3})
	if len(w.rowStart) != len(w.nodes)+1 {
		t.Fatalf("rowStart has %d entries, want %d", len(w.rowStart), len(w.nodes)+1)
	}
	if w.rowStart[0] != 0 || int(w.rowStart[len(w.nodes)]) != len(w.targets) {
		t.Fatalf("rowStart bounds [%d, %d] do not cover targets (%d)",
			w.rowStart[0], w.rowStart[len(w.nodes)], len(w.targets))
	}
	if len(w.targets) != len(w.probs) {
		t.Fatalf("targets (%d) and probs (%d) disagree", len(w.targets), len(w.probs))
	}
	for i := range w.nodes {
		if w.rowStart[i] > w.rowStart[i+1] {
			t.Fatalf("rowStart not monotone at %d", i)
		}
		targets, _ := w.row(i)
		for _, to := range targets {
			if to < 0 || int(to) >= len(w.nodes) {
				t.Fatalf("row %d targets out-of-range node %d", i, to)
			}
		}
	}
}

func TestSelfLoopOnlyOnStart(t *testing.T) {
	w, _ := figure1Walker(t, Config{N: 3})
	si := w.idx[w.start]
	found := false
	for i := range w.nodes {
		targets, _ := w.row(i)
		for _, to := range targets {
			if int(to) == i {
				if i != si {
					t.Fatalf("self-loop on non-start row %d", i)
				}
				found = true
			}
		}
	}
	if !found {
		t.Fatal("aperiodicity self-loop missing on start node")
	}
}

func TestConvergeStationary(t *testing.T) {
	w, g := figure1Walker(t, Config{N: 3})
	iters := w.Converge()
	if iters <= 0 {
		t.Fatal("no iterations recorded")
	}
	// π sums to 1 over the scope.
	total := 0.0
	for _, u := range w.nodes {
		total += w.Pi(u)
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("π sums to %v", total)
	}
	// π is stationary: π = πP within tolerance.
	n := len(w.nodes)
	next := make([]float64, n)
	for i := range w.nodes {
		targets, probs := w.row(i)
		for k, to := range targets {
			next[to] += w.pi[i] * probs[k]
		}
	}
	for i := range next {
		if math.Abs(next[i]-w.pi[i]) > 1e-8 {
			t.Fatalf("π not stationary at node %s: %v vs %v", g.Name(w.nodes[i]), next[i], w.pi[i])
		}
	}
	// Converge is idempotent.
	if w.Converge() != iters {
		t.Fatal("second Converge re-ran")
	}
}

func TestSemanticBiasInPi(t *testing.T) {
	w, g := figure1Walker(t, Config{N: 3})
	w.Converge()
	// Direct assembly answers are more visited than the designer-path KIA.
	bmw := w.Pi(g.NodeByName("BMW_320"))
	kia := w.Pi(g.NodeByName("KIA_K5"))
	if bmw <= kia {
		t.Fatalf("π(BMW_320)=%v should exceed π(KIA_K5)=%v", bmw, kia)
	}
	// Irrelevant city should be visited less than semantically relevant
	// company hub.
	if w.Pi(g.NodeByName("Berlin")) >= w.Pi(g.NodeByName("Volkswagen")) {
		t.Fatal("topological neighbour outranks semantic hub")
	}
}

func TestPiOutsideScope(t *testing.T) {
	w, g := figure1Walker(t, Config{N: 1})
	w.Converge()
	if got := w.Pi(g.NodeByName("Audi_TT")); got != 0 {
		t.Fatalf("π outside scope = %v, want 0", got)
	}
}

func TestAnswerDistribution(t *testing.T) {
	w, g := figure1Walker(t, Config{N: 3})
	w.Converge()
	auto := []kg.TypeID{g.TypeByName("Automobile")}
	d, err := w.AnswerDistribution(auto)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 6 { // five correct + KIA K5
		t.Fatalf("answers = %d, want 6", d.Len())
	}
	total := 0.0
	for i, u := range d.Answers {
		if !g.HasType(u, auto[0]) {
			t.Fatalf("non-automobile answer %s", g.Name(u))
		}
		if u == g.NodeByName("Germany") {
			t.Fatal("start node in answers")
		}
		total += d.Prob(i)
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("π′ sums to %v", total)
	}
}

func TestAnswerDistributionNoAnswers(t *testing.T) {
	w, g := figure1Walker(t, Config{N: 3})
	w.Converge()
	if _, err := w.AnswerDistribution([]kg.TypeID{g.TypeByName("Thing")}); err == nil {
		t.Fatal("empty answer set accepted")
	}
}

func TestSampleMatchesPi(t *testing.T) {
	w, g := figure1Walker(t, Config{N: 3})
	w.Converge()
	d, err := w.AnswerDistribution([]kg.TypeID{g.TypeByName("Automobile")})
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRand(5)
	const k = 100000
	counts := make([]int, d.Len())
	for _, i := range d.Sample(r, k) {
		counts[i]++
	}
	for i := range counts {
		got := float64(counts[i]) / k
		if math.Abs(got-d.Prob(i)) > 0.01 {
			t.Errorf("%s: empirical %v vs π′ %v", g.Name(d.Answers[i]), got, d.Prob(i))
		}
	}
}

// The literal walking-with-rejection collection must agree with the direct
// stationary draw: visits to answers occur with frequency proportional to
// π′ (the sampling-equivalence claim behind Theorem 1).
func TestSampleByWalkMatchesPi(t *testing.T) {
	w, g := figure1Walker(t, Config{N: 3})
	w.Converge()
	auto := []kg.TypeID{g.TypeByName("Automobile")}
	d, err := w.AnswerDistribution(auto)
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRand(11)
	const k = 60000
	visits, err := w.SampleByWalk(r, auto, 500, k)
	if err != nil {
		t.Fatal(err)
	}
	if len(visits) != k {
		t.Fatalf("visits = %d, want %d", len(visits), k)
	}
	counts := map[kg.NodeID]int{}
	for _, u := range visits {
		counts[u]++
	}
	for i, u := range d.Answers {
		got := float64(counts[u]) / k
		if math.Abs(got-d.Prob(i)) > 0.02 {
			t.Errorf("%s: walk frequency %v vs π′ %v", g.Name(u), got, d.Prob(i))
		}
	}
}

// Samplers must refuse to run before convergence instead of silently
// converging outside the caller's context — a cancelled query could
// otherwise fall into an unbounded context-free iteration.
func TestSamplersRequireConvergence(t *testing.T) {
	w, g := figure1Walker(t, Config{N: 3})
	auto := []kg.TypeID{g.TypeByName("Automobile")}
	if _, err := w.AnswerDistribution(auto); !errors.Is(err, ErrNotConverged) {
		t.Fatalf("AnswerDistribution before Converge: err = %v, want ErrNotConverged", err)
	}
	if _, err := w.SampleByWalk(stats.NewRand(1), auto, 10, 10); !errors.Is(err, ErrNotConverged) {
		t.Fatalf("SampleByWalk before Converge: err = %v, want ErrNotConverged", err)
	}
	w.Converge()
	if _, err := w.AnswerDistribution(auto); err != nil {
		t.Fatalf("AnswerDistribution after Converge: %v", err)
	}
	if _, err := w.SampleByWalk(stats.NewRand(1), auto, 10, 10); err != nil {
		t.Fatalf("SampleByWalk after Converge: %v", err)
	}
}

func TestIsolatedStart(t *testing.T) {
	b := kg.NewBuilder()
	b.AddNode("alone", "Country")
	b.AddNode("faraway", "Automobile")
	other := b.AddNode("o1", "Thing")
	other2 := b.AddNode("o2", "Thing")
	if err := b.AddEdge(other, "p", other2); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	calc, err := semsim.NewCalculator(g, embtest.Figure1Model(g), 0)
	if err != nil {
		t.Fatal(err)
	}
	w, err := New(g, calc, g.NodeByName("alone"), g.PredByName("p"), Config{})
	if err != nil {
		t.Fatal(err)
	}
	w.Converge()
	if got := w.Pi(g.NodeByName("alone")); math.Abs(got-1) > 1e-9 {
		t.Fatalf("isolated start π = %v, want 1", got)
	}
	if _, err := w.AnswerDistribution([]kg.TypeID{g.TypeByName("Automobile")}); err == nil {
		t.Fatal("isolated start should yield no answers")
	}
}

// Property: on random graphs the transition matrix is a proper stochastic
// matrix and π converges to a distribution summing to 1.
func TestWalkerInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := stats.NewRand(seed)
		n := 4 + r.Intn(20)
		b := kg.NewBuilder()
		ids := make([]kg.NodeID, n)
		for i := range ids {
			ids[i] = b.AddNode(nodeName(i), "T")
		}
		preds := []string{"assembly", "country", "designer"}
		for i := 0; i < 3*n; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u == v {
				continue
			}
			if err := b.AddEdge(ids[u], preds[r.Intn(len(preds))], ids[v]); err != nil {
				return false
			}
		}
		g := b.Build()
		if g.NumEdges() == 0 {
			return true
		}
		calc, err := semsim.NewCalculator(g, embtest.Figure1Model(g), 0)
		if err != nil {
			return false
		}
		// The random graph may not contain every predicate; pick one that
		// actually occurs (edges exist, so predicate 0 does).
		w, err := New(g, calc, ids[r.Intn(n)], kg.PredID(0), Config{N: 1 + r.Intn(3)})
		if err != nil {
			return false
		}
		for i := range w.nodes {
			_, probs := w.row(i)
			sum := 0.0
			for _, p := range probs {
				sum += p
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		w.Converge()
		total := 0.0
		for _, u := range w.nodes {
			total += w.Pi(u)
		}
		return math.Abs(total-1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func nodeName(i int) string {
	return "n" + string(rune('a'+i/26)) + string(rune('a'+i%26))
}
