package walk

import (
	"context"
	"fmt"
	"math/rand"

	"kgaq/internal/kg"
)

// ctxCheckEvery is how many walk steps pass between ctx polls.
const ctxCheckEvery = 64

// TopologySample is a sample collected by a topology-only walker (CNARW or
// Node2Vec): the distinct answers visited and the empirical visiting
// probability of each, estimated from visit counts. Topology samplers know
// nothing about π — they ignore semantics entirely, which is exactly the
// weakness the Fig. 5a ablation measures.
type TopologySample struct {
	Answers []kg.NodeID
	Probs   []float64 // empirical visit share per answer, sums to 1
	Draws   []int     // the visit sequence as indices into Answers
}

// CNARW runs a Common Neighbor Aware Random Walk (Li et al., ICDE 2019)
// over the n-bounded subgraph: the walker prefers neighbours sharing few
// common neighbours with the current node, which reduces sample correlation
// but still considers topology only. It collects k answer visits after
// burnIn steps.
func CNARW(ctx context.Context, g kg.ReadGraph, start kg.NodeID, targetTypes []kg.TypeID, n int, r *rand.Rand, burnIn, k int) (*TopologySample, error) {
	weight := func(u, v kg.NodeID) float64 {
		cn := commonNeighbors(g, u, v)
		du, dv := g.Degree(u), g.Degree(v)
		m := du
		if dv < m {
			m = dv
		}
		if m == 0 {
			return 0.01
		}
		w := 1 - float64(cn)/float64(m)
		if w < 0.01 {
			w = 0.01
		}
		return w
	}
	return topologyWalk(ctx, g, start, targetTypes, n, r, burnIn, k, weight)
}

func commonNeighbors(g kg.ReadGraph, u, v kg.NodeID) int {
	set := map[kg.NodeID]bool{}
	for _, he := range g.Neighbors(u) {
		set[he.To] = true
	}
	cn := 0
	for _, he := range g.Neighbors(v) {
		if set[he.To] {
			cn++
		}
	}
	return cn
}

// topologyWalk is a first-order weighted walk over the bounded subgraph.
func topologyWalk(ctx context.Context, g kg.ReadGraph, start kg.NodeID, targetTypes []kg.TypeID, n int,
	r *rand.Rand, burnIn, k int, weight func(u, v kg.NodeID) float64) (*TopologySample, error) {

	bound := g.BoundedSubgraph(start, n)
	cur := start
	step := func() {
		hes := g.Neighbors(cur)
		var cands []kg.NodeID
		var ws []float64
		total := 0.0
		for _, he := range hes {
			if !bound.Contains(he.To) {
				continue
			}
			w := weight(cur, he.To)
			cands = append(cands, he.To)
			ws = append(ws, w)
			total += w
		}
		if total <= 0 {
			return
		}
		x := r.Float64() * total
		acc := 0.0
		for i, w := range ws {
			acc += w
			if x < acc {
				cur = cands[i]
				return
			}
		}
		cur = cands[len(cands)-1]
	}
	return collectTopology(ctx, g, start, targetTypes, burnIn, k, step, func() kg.NodeID { return cur })
}

// Node2Vec runs the biased second-order walk of Grover & Leskovec (KDD
// 2016) with return parameter p and in-out parameter q over the n-bounded
// subgraph, collecting k answer visits after burnIn steps. The defaults of
// the ablation are p=1, q=0.5 (outward-leaning).
func Node2Vec(ctx context.Context, g kg.ReadGraph, start kg.NodeID, targetTypes []kg.TypeID, n int,
	p, q float64, r *rand.Rand, burnIn, k int) (*TopologySample, error) {
	if p <= 0 || q <= 0 {
		return nil, fmt.Errorf("walk: node2vec parameters must be positive (p=%v, q=%v)", p, q)
	}
	bound := g.BoundedSubgraph(start, n)
	prev := kg.InvalidNode
	cur := start
	step := func() {
		hes := g.Neighbors(cur)
		var cands []kg.NodeID
		var ws []float64
		total := 0.0
		for _, he := range hes {
			if !bound.Contains(he.To) {
				continue
			}
			var w float64
			switch {
			case he.To == prev:
				w = 1 / p // return
			case prev != kg.InvalidNode && adjacent(g, prev, he.To):
				w = 1 // distance 1 from previous
			default:
				w = 1 / q // outward
			}
			cands = append(cands, he.To)
			ws = append(ws, w)
			total += w
		}
		if total <= 0 {
			return
		}
		x := r.Float64() * total
		acc := 0.0
		for i, w := range ws {
			acc += w
			if x < acc {
				prev, cur = cur, cands[i]
				return
			}
		}
		prev, cur = cur, cands[len(cands)-1]
	}
	return collectTopology(ctx, g, start, targetTypes, burnIn, k, step, func() kg.NodeID { return cur })
}

func adjacent(g kg.ReadGraph, u, v kg.NodeID) bool {
	for _, he := range g.Neighbors(u) {
		if he.To == v {
			return true
		}
	}
	return false
}

// collectTopology shares the burn-in / collection / empirical-probability
// logic of the topology walkers. ctx is polled every 64 steps so a
// cancelled query does not run the full k-visit collection.
func collectTopology(ctx context.Context, g kg.ReadGraph, start kg.NodeID, targetTypes []kg.TypeID,
	burnIn, k int, step func(), tip func() kg.NodeID) (*TopologySample, error) {

	for i := 0; i < burnIn; i++ {
		if i%ctxCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("walk: topology walk interrupted in burn-in: %w", err)
			}
		}
		step()
	}
	counts := map[kg.NodeID]int{}
	var visitSeq []kg.NodeID
	guard := 0
	limit := (burnIn + 1) * (k + 1) * 1000
	for len(visitSeq) < k && guard < limit {
		if guard%ctxCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("walk: topology walk interrupted after %d visits: %w", len(visitSeq), err)
			}
		}
		step()
		guard++
		u := tip()
		if u == start {
			continue
		}
		if g.SharesType(u, targetTypes) {
			counts[u]++
			visitSeq = append(visitSeq, u)
		}
	}
	if len(visitSeq) == 0 {
		return (*TopologySample)(nil), fmt.Errorf("walk: topology walk found no candidate answers")
	}
	ts := &TopologySample{}
	index := map[kg.NodeID]int{}
	for u, c := range counts {
		index[u] = len(ts.Answers)
		ts.Answers = append(ts.Answers, u)
		ts.Probs = append(ts.Probs, float64(c)/float64(len(visitSeq)))
	}
	for _, u := range visitSeq {
		ts.Draws = append(ts.Draws, index[u])
	}
	return ts, nil
}
