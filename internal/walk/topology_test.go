package walk

import (
	"context"
	"math"
	"testing"

	"kgaq/internal/kg"
	"kgaq/internal/kg/kgtest"
	"kgaq/internal/stats"
)

func TestCNARWCollects(t *testing.T) {
	g := kgtest.Figure1()
	start := g.NodeByName("Germany")
	auto := []kg.TypeID{g.TypeByName("Automobile")}
	r := stats.NewRand(3)
	ts, err := CNARW(context.Background(), g, start, auto, 3, r, 200, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts.Draws) != 2000 {
		t.Fatalf("draws = %d", len(ts.Draws))
	}
	total := 0.0
	for i, u := range ts.Answers {
		if !g.HasType(u, auto[0]) {
			t.Fatalf("non-answer %s collected", g.Name(u))
		}
		total += ts.Probs[i]
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("probs sum to %v", total)
	}
}

func TestNode2VecCollects(t *testing.T) {
	g := kgtest.Figure1()
	start := g.NodeByName("Germany")
	auto := []kg.TypeID{g.TypeByName("Automobile")}
	r := stats.NewRand(7)
	ts, err := Node2Vec(context.Background(), g, start, auto, 3, 1, 0.5, r, 200, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts.Draws) != 2000 {
		t.Fatalf("draws = %d", len(ts.Draws))
	}
	// Draw indices must be valid.
	for _, d := range ts.Draws {
		if d < 0 || d >= len(ts.Answers) {
			t.Fatalf("draw index %d out of range", d)
		}
	}
}

func TestNode2VecRejectsBadParams(t *testing.T) {
	g := kgtest.Figure1()
	r := stats.NewRand(1)
	if _, err := Node2Vec(context.Background(), g, 0, nil, 3, 0, 1, r, 10, 10); err == nil {
		t.Fatal("p=0 accepted")
	}
	if _, err := Node2Vec(context.Background(), g, 0, nil, 3, 1, -1, r, 10, 10); err == nil {
		t.Fatal("q=-1 accepted")
	}
}

// Topology samplers ignore semantics: KIA K5 (low semantic similarity but
// high topological accessibility — a short 2-hop path) receives a visit
// share comparable to the semantically similar Audi TT, unlike the
// semantic-aware walker which strongly downweights it relative to direct
// answers.
func TestTopologyIgnoresSemantics(t *testing.T) {
	g := kgtest.Figure1()
	start := g.NodeByName("Germany")
	auto := []kg.TypeID{g.TypeByName("Automobile")}
	r := stats.NewRand(9)
	ts, err := CNARW(context.Background(), g, start, auto, 3, r, 500, 20000)
	if err != nil {
		t.Fatal(err)
	}
	share := map[string]float64{}
	for i, u := range ts.Answers {
		share[g.Name(u)] = ts.Probs[i]
	}
	if share["KIA_K5"] == 0 {
		t.Fatal("CNARW never visited KIA_K5")
	}
	// KIA K5 and Audi TT are both 2 hops from Germany; a topology walker
	// visits them at the same order of magnitude.
	ratio := share["KIA_K5"] / share["Audi_TT"]
	if ratio < 0.2 || ratio > 5 {
		t.Fatalf("topology share ratio KIA/Audi = %v, want O(1)", ratio)
	}
}

func TestTopologyWalkNoAnswers(t *testing.T) {
	g := kgtest.Chain(2)
	r := stats.NewRand(1)
	if _, err := CNARW(context.Background(), g, g.NodeByName("v0"), []kg.TypeID{kg.InvalidType}, 2, r, 10, 10); err == nil {
		t.Fatal("walk with unreachable answers should error")
	}
}
