package walk

import (
	"fmt"
	"math"
	"testing"

	"kgaq/internal/embedding/embtest"
	"kgaq/internal/kg"
	"kgaq/internal/kg/kgtest"
	"kgaq/internal/semsim"
	"kgaq/internal/stats"
)

// Micro-benchmarks of the walk engine: transition-matrix construction,
// power-iteration convergence (CSR vs the pre-CSR slice-of-slices layout),
// and the two sampling mechanisms.

func benchWalker(b *testing.B) (*Walker, *kg.Graph) {
	b.Helper()
	g := kgtest.Figure1()
	calc, err := semsim.NewCalculator(g, embtest.Figure1Model(g), 0)
	if err != nil {
		b.Fatal(err)
	}
	w, err := New(g, calc, g.NodeByName("Germany"), g.PredByName("product"), Config{N: 3})
	if err != nil {
		b.Fatal(err)
	}
	return w, g
}

// benchBigWalker builds a walker whose bound is large enough that the
// convergence sweep's working set spills the fast caches — the regime the
// CSR layout targets. A random graph with ~40k nodes and average half-degree
// ~20 puts the transition arrays in the tens of megabytes.
func benchBigWalker(b *testing.B) *Walker {
	b.Helper()
	const n = 40000
	r := stats.NewRand(97)
	bld := kg.NewBuilder()
	ids := make([]kg.NodeID, n)
	for i := range ids {
		ids[i] = bld.AddNode(fmt.Sprintf("bench_%d", i), "Thing")
	}
	preds := []string{"assembly", "country", "designer", "product"}
	for i := 0; i < 10*n; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u == v {
			continue
		}
		if err := bld.AddEdge(ids[u], preds[r.Intn(len(preds))], ids[v]); err != nil {
			b.Fatal(err)
		}
	}
	g := bld.Build()
	calc, err := semsim.NewCalculator(g, embtest.Figure1Model(g), 0)
	if err != nil {
		b.Fatal(err)
	}
	w, err := New(g, calc, ids[0], g.PredByName("product"), Config{N: 3, MaxIter: 60})
	if err != nil {
		b.Fatal(err)
	}
	return w
}

func BenchmarkWalkerBuild(b *testing.B) {
	g := kgtest.Figure1()
	calc, err := semsim.NewCalculator(g, embtest.Figure1Model(g), 0)
	if err != nil {
		b.Fatal(err)
	}
	us := g.NodeByName("Germany")
	pred := g.PredByName("product")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(g, calc, us, pred, Config{N: 3}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWalkerConverge(b *testing.B) {
	g := kgtest.Figure1()
	calc, err := semsim.NewCalculator(g, embtest.Figure1Model(g), 0)
	if err != nil {
		b.Fatal(err)
	}
	us := g.NodeByName("Germany")
	pred := g.PredByName("product")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := New(g, calc, us, pred, Config{N: 3})
		if err != nil {
			b.Fatal(err)
		}
		w.Converge()
	}
}

// legacyNbr/legacyRows reconstruct the pre-CSR transition layout (one slice
// of {to, p} structs per row) from a built walker, so the two convergence
// benchmarks iterate the exact same stochastic matrix.
type legacyNbr struct {
	to int
	p  float64
}

func legacyRows(w *Walker) [][]legacyNbr {
	rows := make([][]legacyNbr, len(w.nodes))
	for i := range w.nodes {
		targets, probs := w.row(i)
		row := make([]legacyNbr, len(targets))
		for k := range targets {
			row[k] = legacyNbr{to: int(targets[k]), p: probs[k]}
		}
		rows[i] = row
	}
	return rows
}

// legacyConverge is the pre-CSR power iteration, kept verbatim as the
// baseline for the CSR speedup measurement.
func legacyConverge(rows [][]legacyNbr, start int, tol float64, maxIter int) ([]float64, int) {
	n := len(rows)
	pi := make([]float64, n)
	pi[start] = 1
	next := make([]float64, n)
	iters := 0
	for it := 1; it <= maxIter; it++ {
		for i := range next {
			next[i] = 0
		}
		for i, row := range rows {
			if pi[i] == 0 {
				continue
			}
			for _, nb := range row {
				next[nb.to] += pi[i] * nb.p
			}
		}
		diff := 0.0
		for i := range next {
			diff += math.Abs(next[i] - pi[i])
		}
		pi, next = next, pi
		iters = it
		if diff < tol {
			break
		}
	}
	return pi, iters
}

// BenchmarkConvergeCSR measures the production Converge path: the
// reversibility closed form plus one CSR verification sweep.
func BenchmarkConvergeCSR(b *testing.B) {
	w := benchBigWalker(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.pi = nil // force a full re-convergence each iteration
		w.Converge()
	}
}

// csrPowerIterate runs classic power iteration (delta start, same stopping
// rule as legacyConverge) over the CSR transpose, bypassing the closed-form
// fast path — so BenchmarkConvergePowerIterCSR vs BenchmarkConvergeLegacy
// isolates the memory-layout effect from the algorithm change that
// BenchmarkConvergeCSR additionally enjoys.
func csrPowerIterate(w *Walker, tol float64, maxIter int) ([]float64, int) {
	n := len(w.nodes)
	pi := make([]float64, n)
	pi[w.idx[w.start]] = 1
	next := make([]float64, n)
	iters := 0
	for it := 1; it <= maxIter; it++ {
		diff := w.sweep(pi, next)
		pi, next = next, pi
		iters = it
		if diff < tol {
			break
		}
	}
	return pi, iters
}

func BenchmarkConvergePowerIterCSR(b *testing.B) {
	w := benchBigWalker(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		csrPowerIterate(w, w.cfg.Tol, w.cfg.MaxIter)
	}
}

func BenchmarkConvergeLegacy(b *testing.B) {
	w := benchBigWalker(b)
	rows := legacyRows(w)
	start := w.idx[w.start]
	cfg := w.cfg
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		legacyConverge(rows, start, cfg.Tol, cfg.MaxIter)
	}
}

// The closed-form/CSR convergence and the legacy power iteration must agree
// on the fixed point — the speedup comparison is only meaningful over
// identical results. The legacy iteration stops at an L1 change of Tol, so
// per-entry agreement is only guaranteed to that resolution.
func TestCSRMatchesLegacyConverge(t *testing.T) {
	w, _ := figure1Walker(t, Config{N: 3})
	rows := legacyRows(w)
	w.Converge()
	pi, _ := legacyConverge(rows, w.idx[w.start], w.cfg.Tol, w.cfg.MaxIter)
	for i := range pi {
		if math.Abs(pi[i]-w.pi[i]) > 1e-8 {
			t.Fatalf("π[%d]: CSR %v vs legacy %v", i, w.pi[i], pi[i])
		}
	}
}

// Forcing the verification residual to fail (an impossible Tol) drives
// ConvergeCtx into the power-iteration fallback, which must land on the
// same stationary distribution.
func TestConvergeFallbackPowerIteration(t *testing.T) {
	w, _ := figure1Walker(t, Config{N: 3})
	w.cfg.Tol = 1e-300 // below FP slack: the closed form can never verify
	w.cfg.MaxIter = 200
	iters := w.Converge()
	if iters <= 1 {
		t.Fatalf("iters = %d, want the fallback to have run sweeps", iters)
	}
	fast, _ := figure1Walker(t, Config{N: 3})
	fast.Converge()
	total := 0.0
	for i, u := range w.nodes {
		total += w.pi[i]
		if math.Abs(w.Pi(u)-fast.Pi(u)) > 1e-8 {
			t.Fatalf("fallback π(%d) = %v, fast path %v", u, w.Pi(u), fast.Pi(u))
		}
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("fallback π sums to %v", total)
	}
}

func BenchmarkSampleDirect(b *testing.B) {
	w, g := benchWalker(b)
	w.Converge()
	d, err := w.AnswerDistribution([]kg.TypeID{g.TypeByName("Automobile")})
	if err != nil {
		b.Fatal(err)
	}
	r := stats.NewRand(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Sample(r, 1000)
	}
}

func BenchmarkSampleByWalk(b *testing.B) {
	w, g := benchWalker(b)
	w.Converge()
	types := []kg.TypeID{g.TypeByName("Automobile")}
	r := stats.NewRand(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.SampleByWalk(r, types, 100, 1000); err != nil {
			b.Fatal(err)
		}
	}
}
