package walk

import (
	"testing"

	"kgaq/internal/embedding/embtest"
	"kgaq/internal/kg"
	"kgaq/internal/kg/kgtest"
	"kgaq/internal/semsim"
	"kgaq/internal/stats"
)

// Micro-benchmarks of the walk engine: transition-matrix construction,
// power-iteration convergence, and the two sampling mechanisms.

func benchWalker(b *testing.B) (*Walker, *kg.Graph) {
	b.Helper()
	g := kgtest.Figure1()
	calc, err := semsim.NewCalculator(g, embtest.Figure1Model(g), 0)
	if err != nil {
		b.Fatal(err)
	}
	w, err := New(calc, g.NodeByName("Germany"), g.PredByName("product"), Config{N: 3})
	if err != nil {
		b.Fatal(err)
	}
	return w, g
}

func BenchmarkWalkerBuild(b *testing.B) {
	g := kgtest.Figure1()
	calc, err := semsim.NewCalculator(g, embtest.Figure1Model(g), 0)
	if err != nil {
		b.Fatal(err)
	}
	us := g.NodeByName("Germany")
	pred := g.PredByName("product")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(calc, us, pred, Config{N: 3}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWalkerConverge(b *testing.B) {
	g := kgtest.Figure1()
	calc, err := semsim.NewCalculator(g, embtest.Figure1Model(g), 0)
	if err != nil {
		b.Fatal(err)
	}
	us := g.NodeByName("Germany")
	pred := g.PredByName("product")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := New(calc, us, pred, Config{N: 3})
		if err != nil {
			b.Fatal(err)
		}
		w.Converge()
	}
}

func BenchmarkSampleDirect(b *testing.B) {
	w, g := benchWalker(b)
	w.Converge()
	d, err := w.AnswerDistribution([]kg.TypeID{g.TypeByName("Automobile")})
	if err != nil {
		b.Fatal(err)
	}
	r := stats.NewRand(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Sample(r, 1000)
	}
}

func BenchmarkSampleByWalk(b *testing.B) {
	w, g := benchWalker(b)
	w.Converge()
	types := []kg.TypeID{g.TypeByName("Automobile")}
	r := stats.NewRand(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.SampleByWalk(r, types, 100, 1000)
	}
}
