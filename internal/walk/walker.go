package walk

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"kgaq/internal/kg"
	"kgaq/internal/semsim"
	"kgaq/internal/stats"
)

// ErrNotConverged is returned by samplers that need the stationary
// distribution before Converge/ConvergeCtx has run. Callers own the
// convergence step so a cancelled query can never fall into an unbounded
// context-free iteration.
var ErrNotConverged = errors.New("walk: stationary distribution not converged")

// Config tunes the semantic-aware walker.
type Config struct {
	// N is the hop bound of the walk's scope (default 3; §VII finds 99% of
	// correct answers within 3 hops).
	N int
	// SelfLoopSim is the predicate similarity of the virtual self-loop on
	// the start node that makes the chain aperiodic (paper: 0.001).
	SelfLoopSim float64
	// Tol is the L1 convergence tolerance of the stationary distribution
	// (default 1e-10).
	Tol float64
	// MaxIter caps power iteration sweeps (default 1000).
	MaxIter int
}

func (c Config) withDefaults() Config {
	if c.N <= 0 {
		c.N = 3
	}
	if c.SelfLoopSim <= 0 {
		c.SelfLoopSim = 0.001
	}
	if c.Tol <= 0 {
		c.Tol = 1e-10
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 1000
	}
	return c
}

// Walker is the semantic-aware Markov chain over one bounded subgraph,
// specialised to one query predicate. Build with New, call Converge, then
// sample answers.
//
// The transition matrix lives in CSR (compressed sparse row) form: row i's
// transitions are targets[rowStart[i]:rowStart[i+1]] with matching
// probabilities in probs. Power iteration sweeps the transpose (inStart/
// inSrc/inProb — the same entries grouped by target), so each π′(j) is a
// gather into one register followed by a single write, rather than a
// scatter of read-modify-writes into random memory; the zeroing and the L1
// diff pass fuse into the same sweep.
type Walker struct {
	g     kg.ReadGraph
	calc  *semsim.Calculator
	bound *kg.Bounded
	start kg.NodeID
	cfg   Config

	nodes []kg.NodeID       // dense index → NodeID (bound BFS order)
	idx   map[kg.NodeID]int // NodeID → dense index

	// CSR transition matrix; each row sums to 1. Used by the walking
	// samplers, which need outgoing rows.
	rowStart []int32
	targets  []int32
	probs    []float64

	// CSC of the same matrix (CSR of its transpose): entry k of column j
	// says node inSrc[k] reaches j with probability inProb[k]. Used by the
	// power-iteration sweep.
	inStart []int32
	inSrc   []int32
	inProb  []float64

	// rowWeight[i] is the unnormalised weight mass of row i (Σ sim + the
	// start self-loop) — the weighted degree W(i) that the reversibility
	// fast path of ConvergeCtx turns into the closed-form π.
	rowWeight []float64

	pi    []float64 // stationary distribution (after Converge)
	iters int       // sweeps used (1 when the closed form verified directly)
}

// New builds the walker: extracts the n-bounded subgraph around start and
// assembles the transition matrix of Eq. 5 with the aperiodicity self-loop.
//
// g is the graph view the walk runs on. For a live graph this is one
// epoch's snapshot: the CSR assembled here reads delta-overridden adjacency
// for mutated nodes and falls through to the compacted base's slices for
// everything else, so an in-flight query keeps one consistent topology no
// matter how many mutations land while it runs. calc must share g's
// predicate vocabulary (live graphs freeze it, so the engine-wide
// calculator always qualifies).
func New(g kg.ReadGraph, calc *semsim.Calculator, start kg.NodeID, queryPred kg.PredID, cfg Config) (*Walker, error) {
	if calc == nil {
		return nil, fmt.Errorf("walk: nil similarity calculator")
	}
	if g == nil {
		g = calc.Graph()
	}
	cfg = cfg.withDefaults()
	if start < 0 || int(start) >= g.NumNodes() {
		return nil, fmt.Errorf("walk: start node %d out of range", start)
	}
	if queryPred < 0 || int(queryPred) >= g.NumPredicates() {
		return nil, fmt.Errorf("walk: query predicate %d out of range", queryPred)
	}

	bound := g.BoundedSubgraph(start, cfg.N)
	w := &Walker{
		g:     g,
		calc:  calc,
		bound: bound,
		start: start,
		cfg:   cfg,
		nodes: bound.Nodes,
		idx:   make(map[kg.NodeID]int, len(bound.Nodes)),
	}
	for i, u := range w.nodes {
		w.idx[u] = i
	}

	// First pass: count in-bound transitions per row so the CSR arrays are
	// allocated exactly once. Every row gets at least one entry (the
	// isolated-start fallback below), the start row one extra for the
	// aperiodicity self-loop.
	n := len(w.nodes)
	counts := make([]int32, n)
	for i, u := range w.nodes {
		c := int32(0)
		for _, he := range g.Neighbors(u) {
			if _, in := w.idx[he.To]; in {
				c++
			}
		}
		if u == start {
			c++ // self-loop
		}
		if c == 0 {
			c = 1 // isolated node inside the bound: probability-1 self-loop
		}
		counts[i] = c
	}
	w.rowStart = make([]int32, n+1)
	for i := 0; i < n; i++ {
		w.rowStart[i+1] = w.rowStart[i] + counts[i]
	}
	total := int(w.rowStart[n])
	w.targets = make([]int32, total)
	w.probs = make([]float64, total)

	// Second pass: fill rows. The query predicate's similarity row is a
	// single precomputed slice, so scoring an edge is one index.
	simRow := calc.SimRow(queryPred)
	w.rowWeight = make([]float64, n)
	for i, u := range w.nodes {
		at := w.rowStart[i]
		sum := 0.0
		for _, he := range g.Neighbors(u) {
			j, in := w.idx[he.To]
			if !in {
				continue // neighbour outside the n-bound: walk never leaves
			}
			s := simRow[he.Pred]
			w.targets[at] = int32(j)
			w.probs[at] = s
			sum += s
			at++
		}
		if u == start {
			w.targets[at] = int32(i)
			w.probs[at] = cfg.SelfLoopSim
			sum += cfg.SelfLoopSim
			at++
		}
		if at == w.rowStart[i] {
			// Isolated node inside the bound (only the start with no edges).
			w.targets[at] = int32(i)
			w.probs[at] = 1
			sum = 1
			at++
		}
		w.rowWeight[i] = sum
		for k := w.rowStart[i]; k < at; k++ {
			w.probs[k] /= sum
		}
	}

	// Transpose into CSC for the convergence gather: count incoming entries
	// per node, prefix-sum, then place.
	inCounts := make([]int32, n+1)
	for _, j := range w.targets {
		inCounts[j+1]++
	}
	for j := 0; j < n; j++ {
		inCounts[j+1] += inCounts[j]
	}
	w.inStart = inCounts
	w.inSrc = make([]int32, total)
	w.inProb = make([]float64, total)
	pos := make([]int32, n)
	copy(pos, w.inStart[:n])
	for i := 0; i < n; i++ {
		for k := w.rowStart[i]; k < w.rowStart[i+1]; k++ {
			j := w.targets[k]
			w.inSrc[pos[j]] = int32(i)
			w.inProb[pos[j]] = w.probs[k]
			pos[j]++
		}
	}
	return w, nil
}

// Size returns the number of nodes in the walk's scope.
func (w *Walker) Size() int { return len(w.nodes) }

// Bound returns the n-bounded subgraph the walk runs on.
func (w *Walker) Bound() *kg.Bounded { return w.bound }

// row returns the CSR row of dense node i: its targets and probabilities.
func (w *Walker) row(i int) ([]int32, []float64) {
	lo, hi := w.rowStart[i], w.rowStart[i+1]
	return w.targets[lo:hi], w.probs[lo:hi]
}

// Converge computes the stationary distribution and returns the number of
// verification/power-iteration sweeps used. Calling Converge again is a
// no-op.
//
// The chain's transition weights are symmetric — both half-edges of a
// stored edge carry the same predicate, Eq. 4 similarity is symmetric, and
// the aperiodicity self-loop is trivially symmetric — so the walk is a
// reversible Markov chain on a connected weighted graph (the n-bound is
// connected by construction: BFS only admits nodes reached through in-bound
// edges). Its stationary distribution therefore has the closed form
// π(i) = W(i)/ΣⱼW(j) with W the weighted degree (detailed balance:
// π(i)·w(i,j)/W(i) = π(j)·w(j,i)/W(j)). Converge computes that closed form
// directly and verifies it with a single πP sweep over the CSR transpose;
// only if the residual exceeds Tol (it cannot for symmetric weights beyond
// floating-point slack, but future asymmetric weightings may differ) does
// it fall back to classic power iteration (Eq. 6), warm-started from the
// closed form.
func (w *Walker) Converge() int {
	n, _ := w.ConvergeCtx(context.Background())
	return n
}

// ConvergeCtx is Converge with cancellation: ctx is checked before every
// sweep, and a cancelled run returns ctx's error without storing a
// stationary distribution (the walker stays usable — a later ConvergeCtx
// restarts the computation).
func (w *Walker) ConvergeCtx(ctx context.Context) (int, error) {
	if w.pi != nil {
		return w.iters, nil
	}
	n := len(w.nodes)
	if err := ctx.Err(); err != nil {
		return 0, fmt.Errorf("walk: convergence interrupted: %w", err)
	}

	// Reversibility fast path: π ∝ weighted degree, exactly.
	pi := make([]float64, n)
	totalW := 0.0
	for _, wt := range w.rowWeight {
		totalW += wt
	}
	for i, wt := range w.rowWeight {
		pi[i] = wt / totalW
	}
	next := make([]float64, n)
	diff := w.sweep(pi, next)
	if diff < w.cfg.Tol {
		w.pi = pi
		w.iters = 1
		return w.iters, nil
	}

	// Fallback: power iteration (π ← πP, the synchronous form of the
	// paper's Eq. 6 update) until the L1 change falls below Tol or MaxIter
	// sweeps pass, warm-started from the closed form.
	pi, next = next, pi
	w.iters = 1
	for it := 2; it <= w.cfg.MaxIter; it++ {
		if err := ctx.Err(); err != nil {
			return w.iters, fmt.Errorf("walk: convergence interrupted after %d sweeps: %w", w.iters, err)
		}
		diff = w.sweep(pi, next)
		pi, next = next, pi
		w.iters = it
		if diff < w.cfg.Tol {
			break
		}
	}
	w.pi = pi
	return w.iters, nil
}

// sweep performs one power-iteration step next ← πP over the transposed
// CSR and returns the L1 change. Gathering through the transpose turns the
// update into one register accumulation and a single write per node —
// no zeroing pass, no scattered read-modify-writes — with the L1 diff fused
// into the same loop. Four accumulators keep the gather from serialising on
// floating-point add latency.
func (w *Walker) sweep(pi, next []float64) float64 {
	inSrc, inProb, inStart := w.inSrc, w.inProb, w.inStart
	diff := 0.0
	for j := range next {
		lo, hi := int(inStart[j]), int(inStart[j+1])
		src := inSrc[lo:hi]
		pr := inProb[lo:hi:hi]
		var s0, s1, s2, s3 float64
		k := 0
		for ; k+4 <= len(src); k += 4 {
			s0 += pi[src[k]] * pr[k]
			s1 += pi[src[k+1]] * pr[k+1]
			s2 += pi[src[k+2]] * pr[k+2]
			s3 += pi[src[k+3]] * pr[k+3]
		}
		sum := (s0 + s1) + (s2 + s3)
		for ; k < len(src); k++ {
			sum += pi[src[k]] * pr[k]
		}
		next[j] = sum
		diff += math.Abs(sum - pi[j])
	}
	return diff
}

// Pi returns the stationary probability of node u (0 for nodes outside the
// walk's scope). Converge must have been called.
func (w *Walker) Pi(u kg.NodeID) float64 {
	if w.pi == nil {
		return 0
	}
	i, ok := w.idx[u]
	if !ok {
		return 0
	}
	return w.pi[i]
}

// PiMap materialises the stationary distribution keyed by NodeID, the form
// the greedy validator consumes.
func (w *Walker) PiMap() map[kg.NodeID]float64 {
	out := make(map[kg.NodeID]float64, len(w.nodes))
	for i, u := range w.nodes {
		out[u] = w.pi[i]
	}
	return out
}

// AnswerDist is the stationary distribution restricted to candidate answers
// and renormalised (π′ of §IV-A2(3)); answers are drawn i.i.d. from it.
type AnswerDist struct {
	Answers []kg.NodeID
	Probs   []float64 // parallel to Answers; sums to 1
	alias   *stats.Alias
}

// AnswerDistribution extracts π′ over the candidate answers: nodes of the
// bounded subgraph sharing a type with the target (excluding the start
// node). It returns ErrNotConverged when Converge/ConvergeCtx has not run
// (the caller owns convergence and its cancellation), and an error when no
// candidate answer has positive stationary probability.
func (w *Walker) AnswerDistribution(targetTypes []kg.TypeID) (*AnswerDist, error) {
	if w.pi == nil {
		return nil, ErrNotConverged
	}
	// One allocation each, sized by the scope: every candidate is a scope
	// node, so len(w.nodes) bounds the growth and the append loop never
	// reallocates mid-scan.
	ans := make([]kg.NodeID, 0, len(w.nodes))
	probs := make([]float64, 0, len(w.nodes))
	total := 0.0
	for i, u := range w.nodes {
		if u == w.start {
			continue
		}
		if !w.g.SharesType(u, targetTypes) {
			continue
		}
		if w.pi[i] <= 0 {
			continue
		}
		ans = append(ans, u)
		probs = append(probs, w.pi[i])
		total += w.pi[i]
	}
	if len(ans) == 0 || total <= 0 {
		return nil, fmt.Errorf("walk: no candidate answers with positive visiting probability in %d-bounded scope", w.cfg.N)
	}
	for i := range probs {
		probs[i] /= total
	}
	alias := stats.NewAlias(probs)
	if alias == nil {
		return nil, fmt.Errorf("walk: failed to build sampling table over %d answers", len(ans))
	}
	return &AnswerDist{Answers: ans, Probs: probs, alias: alias}, nil
}

// Prob returns π′ of answer index i.
func (d *AnswerDist) Prob(i int) float64 { return d.Probs[i] }

// Len returns the number of candidate answers with positive probability.
func (d *AnswerDist) Len() int { return len(d.Answers) }

// Sample draws k answer indices i.i.d. from π′ (continuous sampling,
// Theorem 1). Indices refer to d.Answers.
func (d *AnswerDist) Sample(r *rand.Rand, k int) []int {
	out := make([]int, k)
	for i := range out {
		out[i] = d.alias.Draw(r)
	}
	return out
}

// SampleByWalk collects k answer visits by actually walking the chain with
// the walking-with-rejection policy of §IV-A2(2), after burnIn steps. It is
// the literal mechanism described in the paper; Sample is the equivalent
// direct draw from the stationary answer distribution. Exposed for tests
// and the sampling-equivalence benchmark. It returns ErrNotConverged when
// Converge/ConvergeCtx has not run.
func (w *Walker) SampleByWalk(r *rand.Rand, targetTypes []kg.TypeID, burnIn, k int) ([]kg.NodeID, error) {
	if w.pi == nil {
		return nil, ErrNotConverged
	}
	cur := w.idx[w.start]
	step := func() {
		targets, probs := w.row(cur)
		if len(targets) == 0 {
			return
		}
		// Walking with rejection: pick a neighbour uniformly, accept with
		// probability proportional to its transition weight.
		maxP := 0.0
		for _, p := range probs {
			if p > maxP {
				maxP = p
			}
		}
		for {
			i := r.Intn(len(targets))
			if r.Float64()*maxP <= probs[i] {
				cur = int(targets[i])
				return
			}
		}
	}
	for i := 0; i < burnIn; i++ {
		step()
	}
	var out []kg.NodeID
	guard := 0
	limit := (burnIn + 1) * (k + 1) * 1000
	for len(out) < k && guard < limit {
		step()
		guard++
		u := w.nodes[cur]
		if u == w.start {
			continue
		}
		if w.g.SharesType(u, targetTypes) {
			out = append(out, u)
		}
	}
	return out, nil
}
