// Package walk implements the semantic-aware random walk of §IV-A: a Markov
// chain over the n-bounded subgraph around the query's specific entity whose
// transition probabilities follow predicate similarity (Eq. 5), with a tiny
// self-loop at the start node for aperiodicity, convergence to the
// stationary distribution π, and continuous sampling of candidate answers
// from the renormalised answer distribution π′ (Theorem 1).
//
// The package also provides the topology-only samplers CNARW and Node2Vec
// used as ablation baselines in Fig. 5a of the paper.
package walk

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"kgaq/internal/kg"
	"kgaq/internal/semsim"
	"kgaq/internal/stats"
)

// Config tunes the semantic-aware walker.
type Config struct {
	// N is the hop bound of the walk's scope (default 3; §VII finds 99% of
	// correct answers within 3 hops).
	N int
	// SelfLoopSim is the predicate similarity of the virtual self-loop on
	// the start node that makes the chain aperiodic (paper: 0.001).
	SelfLoopSim float64
	// Tol is the L1 convergence tolerance of the stationary distribution
	// (default 1e-10).
	Tol float64
	// MaxIter caps power iteration sweeps (default 1000).
	MaxIter int
}

func (c Config) withDefaults() Config {
	if c.N <= 0 {
		c.N = 3
	}
	if c.SelfLoopSim <= 0 {
		c.SelfLoopSim = 0.001
	}
	if c.Tol <= 0 {
		c.Tol = 1e-10
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 1000
	}
	return c
}

// nbr is one outgoing transition: target (dense index) and probability.
type nbr struct {
	to int
	p  float64
}

// Walker is the semantic-aware Markov chain over one bounded subgraph,
// specialised to one query predicate. Build with New, call Converge, then
// sample answers.
type Walker struct {
	g     *kg.Graph
	calc  *semsim.Calculator
	bound *kg.Bounded
	start kg.NodeID
	cfg   Config

	nodes []kg.NodeID       // dense index → NodeID (bound BFS order)
	idx   map[kg.NodeID]int // NodeID → dense index
	rows  [][]nbr           // transition rows, each summing to 1
	pi    []float64         // stationary distribution (after Converge)
	iters int               // power iteration sweeps used
}

// New builds the walker: extracts the n-bounded subgraph around start and
// assembles the transition matrix of Eq. 5 with the aperiodicity self-loop.
func New(calc *semsim.Calculator, start kg.NodeID, queryPred kg.PredID, cfg Config) (*Walker, error) {
	if calc == nil {
		return nil, fmt.Errorf("walk: nil similarity calculator")
	}
	cfg = cfg.withDefaults()
	g := calc.Graph()
	if start < 0 || int(start) >= g.NumNodes() {
		return nil, fmt.Errorf("walk: start node %d out of range", start)
	}
	if queryPred < 0 || int(queryPred) >= g.NumPredicates() {
		return nil, fmt.Errorf("walk: query predicate %d out of range", queryPred)
	}

	bound := g.BoundedSubgraph(start, cfg.N)
	w := &Walker{
		g:     g,
		calc:  calc,
		bound: bound,
		start: start,
		cfg:   cfg,
		nodes: bound.Nodes,
		idx:   make(map[kg.NodeID]int, len(bound.Nodes)),
	}
	for i, u := range w.nodes {
		w.idx[u] = i
	}
	w.rows = make([][]nbr, len(w.nodes))
	for i, u := range w.nodes {
		var row []nbr
		total := 0.0
		for _, he := range g.Neighbors(u) {
			j, in := w.idx[he.To]
			if !in {
				continue // neighbour outside the n-bound: walk never leaves
			}
			s := calc.PredSim(queryPred, he.Pred)
			row = append(row, nbr{to: j, p: s})
			total += s
		}
		if u == start {
			row = append(row, nbr{to: i, p: cfg.SelfLoopSim})
			total += cfg.SelfLoopSim
		}
		if total <= 0 {
			// Isolated node inside the bound (only the start with no edges).
			row = append(row, nbr{to: i, p: 1})
			total = 1
		}
		for k := range row {
			row[k].p /= total
		}
		w.rows[i] = row
	}
	return w, nil
}

// Size returns the number of nodes in the walk's scope.
func (w *Walker) Size() int { return len(w.nodes) }

// Bound returns the n-bounded subgraph the walk runs on.
func (w *Walker) Bound() *kg.Bounded { return w.bound }

// Converge computes the stationary distribution by power iteration
// (π ← πP, the synchronous form of the paper's Eq. 6 update) until the L1
// change falls below Tol or MaxIter sweeps pass. It returns the number of
// sweeps used. Calling Converge again is a no-op.
func (w *Walker) Converge() int {
	n, _ := w.ConvergeCtx(context.Background())
	return n
}

// ConvergeCtx is Converge with cancellation: ctx is checked before every
// power-iteration sweep, and a cancelled run returns ctx's error without
// storing a stationary distribution (the walker stays usable — a later
// ConvergeCtx restarts the iteration).
func (w *Walker) ConvergeCtx(ctx context.Context) (int, error) {
	if w.pi != nil {
		return w.iters, nil
	}
	n := len(w.nodes)
	pi := make([]float64, n)
	pi[w.idx[w.start]] = 1 // π initialised to {1, 0, ..., 0} at the start node
	next := make([]float64, n)
	for it := 1; it <= w.cfg.MaxIter; it++ {
		if err := ctx.Err(); err != nil {
			return w.iters, fmt.Errorf("walk: convergence interrupted after %d sweeps: %w", w.iters, err)
		}
		for i := range next {
			next[i] = 0
		}
		for i, row := range w.rows {
			if pi[i] == 0 {
				continue
			}
			for _, nb := range row {
				next[nb.to] += pi[i] * nb.p
			}
		}
		diff := 0.0
		for i := range next {
			diff += math.Abs(next[i] - pi[i])
		}
		pi, next = next, pi
		if diff < w.cfg.Tol {
			w.iters = it
			break
		}
		w.iters = it
	}
	w.pi = pi
	return w.iters, nil
}

// Pi returns the stationary probability of node u (0 for nodes outside the
// walk's scope). Converge must have been called.
func (w *Walker) Pi(u kg.NodeID) float64 {
	if w.pi == nil {
		return 0
	}
	i, ok := w.idx[u]
	if !ok {
		return 0
	}
	return w.pi[i]
}

// PiMap materialises the stationary distribution keyed by NodeID, the form
// the greedy validator consumes.
func (w *Walker) PiMap() map[kg.NodeID]float64 {
	out := make(map[kg.NodeID]float64, len(w.nodes))
	for i, u := range w.nodes {
		out[u] = w.pi[i]
	}
	return out
}

// AnswerDist is the stationary distribution restricted to candidate answers
// and renormalised (π′ of §IV-A2(3)); answers are drawn i.i.d. from it.
type AnswerDist struct {
	Answers []kg.NodeID
	Probs   []float64 // parallel to Answers; sums to 1
	alias   *stats.Alias
}

// AnswerDistribution extracts π′ over the candidate answers: nodes of the
// bounded subgraph sharing a type with the target (excluding the start
// node). It returns an error when no candidate answer has positive
// stationary probability.
func (w *Walker) AnswerDistribution(targetTypes []kg.TypeID) (*AnswerDist, error) {
	if w.pi == nil {
		w.Converge()
	}
	var ans []kg.NodeID
	var probs []float64
	total := 0.0
	for i, u := range w.nodes {
		if u == w.start {
			continue
		}
		if !w.g.SharesType(u, targetTypes) {
			continue
		}
		if w.pi[i] <= 0 {
			continue
		}
		ans = append(ans, u)
		probs = append(probs, w.pi[i])
		total += w.pi[i]
	}
	if len(ans) == 0 || total <= 0 {
		return nil, fmt.Errorf("walk: no candidate answers with positive visiting probability in %d-bounded scope", w.cfg.N)
	}
	for i := range probs {
		probs[i] /= total
	}
	alias := stats.NewAlias(probs)
	if alias == nil {
		return nil, fmt.Errorf("walk: failed to build sampling table over %d answers", len(ans))
	}
	return &AnswerDist{Answers: ans, Probs: probs, alias: alias}, nil
}

// Prob returns π′ of answer index i.
func (d *AnswerDist) Prob(i int) float64 { return d.Probs[i] }

// Len returns the number of candidate answers with positive probability.
func (d *AnswerDist) Len() int { return len(d.Answers) }

// Sample draws k answer indices i.i.d. from π′ (continuous sampling,
// Theorem 1). Indices refer to d.Answers.
func (d *AnswerDist) Sample(r *rand.Rand, k int) []int {
	out := make([]int, k)
	for i := range out {
		out[i] = d.alias.Draw(r)
	}
	return out
}

// SampleByWalk collects k answer visits by actually walking the chain with
// the walking-with-rejection policy of §IV-A2(2), after burnIn steps. It is
// the literal mechanism described in the paper; Sample is the equivalent
// direct draw from the stationary answer distribution. Exposed for tests
// and the sampling-equivalence benchmark.
func (w *Walker) SampleByWalk(r *rand.Rand, targetTypes []kg.TypeID, burnIn, k int) []kg.NodeID {
	if w.pi == nil {
		w.Converge()
	}
	cur := w.idx[w.start]
	step := func() {
		row := w.rows[cur]
		if len(row) == 0 {
			return
		}
		// Walking with rejection: pick a neighbour uniformly, accept with
		// probability proportional to its transition weight.
		maxP := 0.0
		for _, nb := range row {
			if nb.p > maxP {
				maxP = nb.p
			}
		}
		for {
			nb := row[r.Intn(len(row))]
			if r.Float64()*maxP <= nb.p {
				cur = nb.to
				return
			}
		}
	}
	for i := 0; i < burnIn; i++ {
		step()
	}
	var out []kg.NodeID
	guard := 0
	limit := (burnIn + 1) * (k + 1) * 1000
	for len(out) < k && guard < limit {
		step()
		guard++
		u := w.nodes[cur]
		if u == w.start {
			continue
		}
		if w.g.SharesType(u, targetTypes) {
			out = append(out, u)
		}
	}
	return out
}
