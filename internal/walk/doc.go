// Package walk implements the semantic-aware random walk of §IV-A: a Markov
// chain over the n-bounded subgraph around the query's specific entity whose
// transition probabilities follow predicate similarity (Eq. 5), with a tiny
// self-loop at the start node for aperiodicity, convergence to the
// stationary distribution π, and continuous sampling of candidate answers
// from the renormalised answer distribution π′ (Theorem 1).
//
// The package also provides the topology-only samplers CNARW and Node2Vec
// used as ablation baselines in Fig. 5a of the paper.
package walk
