// Package kgtest provides the shared hand-built fixture graphs used by
// tests across kgaq: the paper's Figure 1 knowledge graph and a few small
// synthetic shapes. Keeping them here lets the walk, similarity, estimator
// and engine tests all assert against the same well-understood instance.
package kgtest

import (
	"fmt"

	"kgaq/internal/kg"
)

// Figure1 reconstructs the knowledge graph of Figure 1/3 of the paper:
// German automobiles connected to Germany through structurally different but
// semantically similar paths, one semantically distant answer (KIA K5 via
// its designer's nationality), and assorted non-automobile neighbours.
//
// Node names follow the paper: Germany, BMW_320, BMW_X6, Porsche_911,
// Audi_TT, Lamando, KIA_K5, Volkswagen, Porsche, EA211_TSI, Peter_Schreyer,
// plus Angela_Merkel and Berlin as irrelevant neighbours. One product edge
// (Volkswagen product Lamando) keeps the canonical query predicate in the
// graph vocabulary, exactly as in DBpedia.
//
// With the Figure1Clusters embedding and τ = 0.85, the correct answers to
// "cars produced in Germany" are the five of Figure1Answers, and the paper's
// running AVG(price) ground truth $44,072.16 holds.
func Figure1() *kg.Graph {
	b := kg.NewBuilder()

	germany := b.AddNode("Germany", "Country")
	bmw320 := b.AddNode("BMW_320", "Automobile")
	bmwX6 := b.AddNode("BMW_X6", "Automobile")
	porsche911 := b.AddNode("Porsche_911", "Automobile")
	audiTT := b.AddNode("Audi_TT", "Automobile")
	lamando := b.AddNode("Lamando", "Automobile")
	kiaK5 := b.AddNode("KIA_K5", "Automobile")
	vw := b.AddNode("Volkswagen", "Company")
	porscheCo := b.AddNode("Porsche", "Company")
	engine := b.AddNode("EA211_TSI", "Device")
	schreyer := b.AddNode("Peter_Schreyer", "Person")
	merkel := b.AddNode("Angela_Merkel", "Person")
	berlin := b.AddNode("Berlin", "City")

	must := func(err error) {
		if err != nil {
			panic(fmt.Sprintf("kgtest: %v", err))
		}
	}

	// Direct and indirect "produced in Germany" paths.
	must(b.AddEdge(bmw320, "assembly", germany))
	must(b.AddEdge(bmwX6, "assembly", germany))
	must(b.AddEdge(porsche911, "manufacturer", porscheCo))
	must(b.AddEdge(porscheCo, "country", germany))
	must(b.AddEdge(audiTT, "assembly", vw))
	must(b.AddEdge(vw, "country", germany))
	must(b.AddEdge(vw, "product", lamando))
	must(b.AddEdge(lamando, "designCompany", vw))
	must(b.AddEdge(lamando, "engine", engine))
	must(b.AddEdge(engine, "madeBy", vw))
	// The semantically distant answer: KIA K5 via its designer.
	must(b.AddEdge(kiaK5, "designer", schreyer))
	must(b.AddEdge(schreyer, "nationality", germany))
	// Irrelevant neighbours of Germany.
	must(b.AddEdge(merkel, "citizenOf", germany))
	must(b.AddEdge(berlin, "capitalOf", germany))

	// Five correct-answer prices summing to 5 × $44,072.16.
	must(b.SetAttr(bmw320, "price", 35_000.00))
	must(b.SetAttr(bmwX6, "price", 55_000.00))
	must(b.SetAttr(porsche911, "price", 64_300.00))
	must(b.SetAttr(audiTT, "price", 42_000.00))
	must(b.SetAttr(lamando, "price", 24_060.80))
	must(b.SetAttr(kiaK5, "price", 24_990.00))

	must(b.SetAttr(bmwX6, "horsepower", 335))
	must(b.SetAttr(porsche911, "horsepower", 379))
	must(b.SetAttr(bmw320, "fuel_economy", 28))
	must(b.SetAttr(bmwX6, "fuel_economy", 22))
	must(b.SetAttr(audiTT, "fuel_economy", 26))

	return b.Build()
}

// Figure1Affinities is the oracle-embedding affinity specification matching
// the predicate similarities quoted in the paper (Example 3 and Figure 3):
// sim(assembly, product) = 0.98, sim(country, product) = 0.81, and the
// KIA K5 path designer→nationality lands at geometric mean ≈ 0.82, below
// the τ = 0.85 threshold. All predicates share one "producedIn" cluster
// whose canonical predicate is product. embtest.Figure1Model turns this into
// an embedding.
func Figure1Affinities() map[string]float64 {
	return map[string]float64{
		"product":       1.00,
		"assembly":      0.98,
		"manufacturer":  0.90,
		"madeBy":        0.50,
		"nationality":   0.84,
		"country":       0.81,
		"designer":      0.80,
		"designCompany": 0.79,
		"engine":        0.20,
		"citizenOf":     0.14,
		"capitalOf":     0.12,
	}
}

// Figure1Answers lists the automobile names that are semantically correct
// answers to "cars produced in Germany" at τ = 0.85 on the fixture (all but
// KIA_K5, whose only connection is designer→nationality).
func Figure1Answers() []string {
	return []string{"BMW_320", "BMW_X6", "Porsche_911", "Audi_TT", "Lamando"}
}

// Figure1AvgPrice is the τ-GT of the running example query.
const Figure1AvgPrice = 44_072.16

// Figure1SumPrice is the τ-GT for SUM(price) over the correct answers.
const Figure1SumPrice = 5 * Figure1AvgPrice

// Chain builds a simple path graph v0 -p-> v1 -p-> ... of the given length
// with one type per node ("T0", "T1", ...), useful for walk-convergence and
// subgraph-bound tests.
func Chain(length int) *kg.Graph {
	b := kg.NewBuilder()
	prev := b.AddNode("v0", "T0")
	for i := 1; i <= length; i++ {
		cur := b.AddNode(fmt.Sprintf("v%d", i), fmt.Sprintf("T%d", i))
		if err := b.AddEdge(prev, "next", cur); err != nil {
			panic(err)
		}
		prev = cur
	}
	return b.Build()
}

// Star builds a hub with n spokes, all edges hub -spoke-> leaf_i, each leaf
// typed "Leaf" and carrying attribute "val" = i.
func Star(n int) *kg.Graph {
	b := kg.NewBuilder()
	hub := b.AddNode("hub", "Hub")
	for i := 0; i < n; i++ {
		leaf := b.AddNode(fmt.Sprintf("leaf%d", i), "Leaf")
		if err := b.AddEdge(hub, "spoke", leaf); err != nil {
			panic(err)
		}
		if err := b.SetAttr(leaf, "val", float64(i)); err != nil {
			panic(err)
		}
	}
	return b.Build()
}
