package kg

import (
	"fmt"
	"testing"
	"testing/quick"

	"kgaq/internal/stats"
)

func chainGraph(t *testing.T, length int) *Graph {
	t.Helper()
	b := NewBuilder()
	prev := b.AddNode("v0", "T")
	for i := 1; i <= length; i++ {
		cur := b.AddNode(fmt.Sprintf("v%d", i), "T")
		if err := b.AddEdge(prev, "next", cur); err != nil {
			t.Fatal(err)
		}
		prev = cur
	}
	return b.Build()
}

func TestBoundedSubgraphChain(t *testing.T) {
	g := chainGraph(t, 6)
	start := g.NodeByName("v0")
	for n := 0; n <= 6; n++ {
		b := g.BoundedSubgraph(start, n)
		if b.Size() != n+1 {
			t.Fatalf("n=%d: size = %d, want %d", n, b.Size(), n+1)
		}
		if b.Nodes[0] != start {
			t.Fatalf("n=%d: first node is not the start", n)
		}
		for _, u := range b.Nodes {
			if d := b.Dist[u]; d > n {
				t.Fatalf("node %s at distance %d > bound %d", g.Name(u), d, n)
			}
		}
	}
}

func TestBoundedSubgraphBothDirections(t *testing.T) {
	// v0 -> v1 -> v2; starting from v2, the 2-bound must reach v0 against
	// edge direction.
	g := chainGraph(t, 2)
	b := g.BoundedSubgraph(g.NodeByName("v2"), 2)
	if !b.Contains(g.NodeByName("v0")) {
		t.Fatal("BFS did not traverse reverse edges")
	}
}

func TestBoundedContains(t *testing.T) {
	g := chainGraph(t, 4)
	b := g.BoundedSubgraph(g.NodeByName("v0"), 2)
	if !b.Contains(g.NodeByName("v2")) {
		t.Fatal("v2 should be inside 2-bound")
	}
	if b.Contains(g.NodeByName("v4")) {
		t.Fatal("v4 should be outside 2-bound")
	}
}

func TestCandidateAnswers(t *testing.T) {
	b := NewBuilder()
	de := b.AddNode("Germany", "Country")
	bmw := b.AddNode("BMW_320", "Automobile")
	vw := b.AddNode("Volkswagen", "Company")
	audi := b.AddNode("Audi_TT", "Automobile")
	far := b.AddNode("Far_Car", "Automobile")
	mid := b.AddNode("mid", "Thing")
	mid2 := b.AddNode("mid2", "Thing")
	for _, e := range []struct {
		s NodeID
		p string
		d NodeID
	}{
		{bmw, "assembly", de}, {audi, "assembly", vw}, {vw, "country", de},
		{mid, "p", de}, {mid2, "p", mid}, {far, "p", mid2},
	} {
		if err := b.AddEdge(e.s, e.p, e.d); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	bound := g.BoundedSubgraph(g.NodeByName("Germany"), 2)
	auto := g.TypeByName("Automobile")
	got := bound.CandidateAnswers(g, []TypeID{auto})
	names := map[string]bool{}
	for _, u := range got {
		names[g.Name(u)] = true
	}
	if !names["BMW_320"] || !names["Audi_TT"] {
		t.Fatalf("candidates = %v, want BMW_320 and Audi_TT", names)
	}
	if names["Far_Car"] {
		t.Fatal("Far_Car is 3 hops away, must be excluded at n=2")
	}
	if names["Volkswagen"] {
		t.Fatal("type filter failed")
	}
}

func TestInducedEdgeCount(t *testing.T) {
	g := chainGraph(t, 4)
	b := g.BoundedSubgraph(g.NodeByName("v0"), 2)
	// Induced edges among {v0,v1,v2}: v0-v1, v1-v2.
	if got := b.InducedEdgeCount(g); got != 2 {
		t.Fatalf("InducedEdgeCount = %d, want 2", got)
	}
}

// Property: on random graphs, every node reported at distance d has a
// neighbour at distance d-1, and no node outside the bound is included.
func TestBoundedSubgraphInvariant(t *testing.T) {
	f := func(seed int64) bool {
		r := stats.NewRand(seed)
		n := 5 + r.Intn(30)
		b := NewBuilder()
		ids := make([]NodeID, n)
		for i := 0; i < n; i++ {
			ids[i] = b.AddNode(fmt.Sprintf("n%d", i), "T")
		}
		for i := 0; i < 2*n; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u == v {
				continue
			}
			if err := b.AddEdge(ids[u], "p", ids[v]); err != nil {
				return false
			}
		}
		g := b.Build()
		start := ids[r.Intn(n)]
		bound := 1 + r.Intn(3)
		bs := g.BoundedSubgraph(start, bound)
		for _, u := range bs.Nodes {
			d := bs.Dist[u]
			if d == 0 {
				if u != start {
					return false
				}
				continue
			}
			if d > bound {
				return false
			}
			ok := false
			for _, he := range g.Neighbors(u) {
				if pd, in := bs.Dist[he.To]; in && pd == d-1 {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
