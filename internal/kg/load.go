package kg

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Well-known predicates recognised by the N-Triples loader. Knowledge graphs
// encode node metadata as ordinary triples; the loader folds these into the
// property-graph model (types, names, numeric attributes) instead of storing
// them as edges.
const (
	RDFType   = "rdf:type"
	RDFSLabel = "rdfs:label"
)

// LoadError describes a malformed input line. Loaders collect all errors up
// to a cap rather than aborting on the first, so a mostly-good dump still
// loads; the caller decides whether the error budget is acceptable.
type LoadError struct {
	Line int
	Text string
	Err  error
}

func (e *LoadError) Error() string {
	return fmt.Sprintf("kg: line %d: %v (%q)", e.Line, e.Err, truncate(e.Text, 80))
}

func (e *LoadError) Unwrap() error { return e.Err }

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}

// NTOptions configures ReadNTriples.
type NTOptions struct {
	// MaxErrors aborts loading once this many malformed lines have been
	// seen. Zero means a default of 100.
	MaxErrors int
	// StrictTypes requires every node to have at least one type after
	// loading; nodes without one receive the type "Thing" when false.
	StrictTypes bool
}

// ReadNTriples parses a pragmatic N-Triples subset:
//
//	<subject> <predicate> <object> .        # relationship edge
//	<subject> <rdf:type> <TypeName> .       # node type
//	<subject> <rdfs:label> "Name" .         # node display name (optional)
//	<subject> <attrName> "123.4"^^xsd:double .  # numeric attribute
//	<subject> <attrName> "123.4" .          # numeric attribute (untyped)
//
// IRIs are written <like-this>; the loader strips angle brackets and any
// http://…/ prefix so tests and fixtures can use short names. Lines starting
// with '#' and blank lines are skipped. Subjects are identified by IRI; the
// IRI local name doubles as the unique node name unless an rdfs:label
// overrides it.
//
// The returned error slice contains one LoadError per malformed line (nil
// when the input was clean); the Graph contains everything that parsed.
func ReadNTriples(r io.Reader, opts NTOptions) (*Graph, []error) {
	if opts.MaxErrors == 0 {
		opts.MaxErrors = 100
	}
	b := NewBuilder()
	var errs []error
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	addErr := func(line int, text string, err error) bool {
		errs = append(errs, &LoadError{Line: line, Text: text, Err: err})
		return len(errs) < opts.MaxErrors
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		subj, pred, obj, objIsLiteral, err := parseNTLine(line)
		if err != nil {
			if !addErr(lineNo, line, err) {
				errs = append(errs, fmt.Errorf("kg: too many errors, aborting at line %d", lineNo))
				return b.Build(), errs
			}
			continue
		}
		s := b.AddNode(subj)
		switch {
		case pred == RDFType && !objIsLiteral:
			b.AddNode(subj, obj) // merge type into existing node
		case pred == RDFSLabel && objIsLiteral:
			// Display names must stay unique; the subject IRI already is,
			// so a label equal to another node's name is a data error.
			if other := b.NodeByName(obj); other != InvalidNode && other != s {
				if !addErr(lineNo, line, fmt.Errorf("duplicate label %q", obj)) {
					return b.Build(), errs
				}
			}
			// Labels are cosmetic in this model; the IRI stays the key.
		case objIsLiteral:
			v, perr := strconv.ParseFloat(obj, 64)
			if perr != nil {
				if !addErr(lineNo, line, fmt.Errorf("non-numeric literal %q for attribute %q", obj, pred)) {
					return b.Build(), errs
				}
				continue
			}
			if err := b.SetAttr(s, pred, v); err != nil {
				if !addErr(lineNo, line, err) {
					return b.Build(), errs
				}
			}
		default:
			o := b.AddNode(obj)
			if err := b.AddEdge(s, pred, o); err != nil {
				if !addErr(lineNo, line, err) {
					return b.Build(), errs
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		errs = append(errs, fmt.Errorf("kg: read: %w", err))
	}
	if !opts.StrictTypes {
		// Give untyped nodes a catch-all type so Definition 4's type check
		// remains well-defined (the paper assumes probabilistic typing fills
		// gaps; "Thing" is our stand-in).
		g := b.g
		for id := range g.names {
			if len(g.types[id]) == 0 {
				b.addTypeTo(NodeID(id), "Thing")
			}
		}
	} else {
		for id, ts := range b.g.types {
			if len(ts) == 0 {
				errs = append(errs, fmt.Errorf("kg: node %q has no type", b.g.names[id]))
			}
		}
	}
	return b.Build(), errs
}

// parseNTLine splits one N-Triples line into subject, predicate and object.
// objIsLiteral reports whether the object was a quoted literal.
func parseNTLine(line string) (subj, pred, obj string, objIsLiteral bool, err error) {
	rest := line
	subj, rest, err = parseIRI(rest)
	if err != nil {
		return "", "", "", false, fmt.Errorf("subject: %w", err)
	}
	pred, rest, err = parseIRI(rest)
	if err != nil {
		return "", "", "", false, fmt.Errorf("predicate: %w", err)
	}
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return "", "", "", false, fmt.Errorf("missing object")
	}
	if rest[0] == '"' {
		end := strings.Index(rest[1:], `"`)
		if end < 0 {
			return "", "", "", false, fmt.Errorf("unterminated literal")
		}
		obj = rest[1 : 1+end]
		rest = rest[2+end:]
		// Ignore any ^^xsd:type suffix.
		rest = strings.TrimSpace(rest)
		if strings.HasPrefix(rest, "^^") {
			if i := strings.IndexAny(rest, " \t"); i >= 0 {
				rest = rest[i:]
			} else {
				rest = ""
			}
		}
		if !strings.HasSuffix(strings.TrimSpace(rest), ".") && strings.TrimSpace(rest) != "" {
			return "", "", "", false, fmt.Errorf("trailing garbage after literal")
		}
		return subj, pred, obj, true, nil
	}
	obj, rest, err = parseIRI(rest)
	if err != nil {
		return "", "", "", false, fmt.Errorf("object: %w", err)
	}
	rest = strings.TrimSpace(rest)
	if rest != "." && rest != "" {
		return "", "", "", false, fmt.Errorf("trailing garbage %q", rest)
	}
	return subj, pred, obj, false, nil
}

// parseIRI consumes one <iri> token, returning its shortened form.
func parseIRI(s string) (iri, rest string, err error) {
	s = strings.TrimSpace(s)
	if len(s) == 0 || s[0] != '<' {
		return "", "", fmt.Errorf("expected <iri>, got %q", truncate(s, 20))
	}
	end := strings.IndexByte(s, '>')
	if end < 0 {
		return "", "", fmt.Errorf("unterminated <iri>")
	}
	iri = s[1:end]
	// Strip a scheme://host/ prefix so fixtures can use full or short IRIs.
	if i := strings.LastIndexAny(iri, "/#"); i >= 0 && strings.Contains(iri, "://") {
		iri = iri[i+1:]
	}
	if iri == "" {
		return "", "", fmt.Errorf("empty iri")
	}
	return iri, s[end+1:], nil
}

// LoadNTriplesFile reads an N-Triples file from disk.
func LoadNTriplesFile(path string, opts NTOptions) (*Graph, []error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, []error{fmt.Errorf("kg: %w", err)}
	}
	defer f.Close()
	return ReadNTriples(f, opts)
}

// ReadTSV parses the two-file TSV layout written by cmd/kgen:
//
//	nodes:  name \t type1,type2 \t attr1=v1;attr2=v2
//	edges:  srcName \t predicate \t dstName
//
// Either reader may be nil to skip that section (an edges-only load attaches
// the catch-all "Thing" type to every node).
func ReadTSV(nodes, edges io.Reader) (*Graph, []error) {
	b := NewBuilder()
	var errs []error
	if nodes != nil {
		sc := bufio.NewScanner(nodes)
		sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
		lineNo := 0
		for sc.Scan() {
			lineNo++
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			parts := strings.Split(line, "\t")
			if len(parts) < 1 {
				continue
			}
			name := parts[0]
			var types []string
			if len(parts) > 1 && parts[1] != "" {
				types = strings.Split(parts[1], ",")
			}
			id := b.AddNode(name, types...)
			if len(parts) > 2 && parts[2] != "" {
				for _, kv := range strings.Split(parts[2], ";") {
					if kv == "" {
						continue
					}
					eq := strings.IndexByte(kv, '=')
					if eq < 0 {
						errs = append(errs, &LoadError{Line: lineNo, Text: line, Err: fmt.Errorf("bad attribute %q", kv)})
						continue
					}
					v, err := strconv.ParseFloat(kv[eq+1:], 64)
					if err != nil {
						errs = append(errs, &LoadError{Line: lineNo, Text: line, Err: fmt.Errorf("bad attribute value %q", kv)})
						continue
					}
					if err := b.SetAttr(id, kv[:eq], v); err != nil {
						errs = append(errs, err)
					}
				}
			}
		}
		if err := sc.Err(); err != nil {
			errs = append(errs, fmt.Errorf("kg: nodes: %w", err))
		}
	}
	if edges != nil {
		sc := bufio.NewScanner(edges)
		sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
		lineNo := 0
		for sc.Scan() {
			lineNo++
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			parts := strings.Split(line, "\t")
			if len(parts) != 3 {
				errs = append(errs, &LoadError{Line: lineNo, Text: line, Err: fmt.Errorf("want 3 fields, got %d", len(parts))})
				continue
			}
			src := b.AddNode(parts[0])
			dst := b.AddNode(parts[2])
			if err := b.AddEdge(src, parts[1], dst); err != nil {
				errs = append(errs, &LoadError{Line: lineNo, Text: line, Err: err})
			}
		}
		if err := sc.Err(); err != nil {
			errs = append(errs, fmt.Errorf("kg: edges: %w", err))
		}
	}
	g := b.g
	for id := range g.names {
		if len(g.types[id]) == 0 {
			b.addTypeTo(NodeID(id), "Thing")
		}
	}
	return b.Build(), errs
}

// LoadTSVFiles reads the nodes/edges TSV pair from disk.
func LoadTSVFiles(nodesPath, edgesPath string) (*Graph, []error) {
	nf, err := os.Open(nodesPath)
	if err != nil {
		return nil, []error{fmt.Errorf("kg: %w", err)}
	}
	defer nf.Close()
	ef, err := os.Open(edgesPath)
	if err != nil {
		return nil, []error{fmt.Errorf("kg: %w", err)}
	}
	defer ef.Close()
	return ReadTSV(nf, ef)
}

// WriteTSV writes the graph in the TSV layout understood by ReadTSV.
func (g *Graph) WriteTSV(nodes, edges io.Writer) error {
	nw := bufio.NewWriter(nodes)
	for id := range g.names {
		u := NodeID(id)
		var types []string
		for _, t := range g.Types(u) {
			types = append(types, g.TypeName(t))
		}
		var attrs []string
		for _, av := range g.Attrs(u) {
			attrs = append(attrs, fmt.Sprintf("%s=%g", g.AttrName(av.Attr), av.Value))
		}
		if _, err := fmt.Fprintf(nw, "%s\t%s\t%s\n", g.Name(u), strings.Join(types, ","), strings.Join(attrs, ";")); err != nil {
			return fmt.Errorf("kg: write nodes: %w", err)
		}
	}
	if err := nw.Flush(); err != nil {
		return fmt.Errorf("kg: write nodes: %w", err)
	}
	// Edges are emitted in (predicate id, source, destination) order so
	// each predicate's first occurrence appears in ascending id order: a
	// ReadTSV round trip then interns predicates to their original ids,
	// which keeps a separately saved embedding (vectors indexed by PredID)
	// aligned with the reloaded graph.
	type edge struct {
		src  NodeID
		pred PredID
		dst  NodeID
	}
	es := make([]edge, 0, g.NumEdges())
	g.EachEdge(func(src NodeID, pred PredID, dst NodeID) bool {
		es = append(es, edge{src: src, pred: pred, dst: dst})
		return true
	})
	sort.Slice(es, func(i, j int) bool {
		if es[i].pred != es[j].pred {
			return es[i].pred < es[j].pred
		}
		if es[i].src != es[j].src {
			return es[i].src < es[j].src
		}
		return es[i].dst < es[j].dst
	})
	ew := bufio.NewWriter(edges)
	for _, e := range es {
		if _, err := fmt.Fprintf(ew, "%s\t%s\t%s\n", g.Name(e.src), g.PredName(e.pred), g.Name(e.dst)); err != nil {
			return fmt.Errorf("kg: write edges: %w", err)
		}
	}
	if err := ew.Flush(); err != nil {
		return fmt.Errorf("kg: write edges: %w", err)
	}
	return nil
}
