package kg

import (
	"fmt"
	"sort"
)

// NodeID identifies a node within a Graph. IDs are dense, starting at 0.
type NodeID int32

// PredID identifies a predicate label within a Graph's vocabulary.
type PredID int32

// TypeID identifies a node type within a Graph's vocabulary.
type TypeID int32

// AttrID identifies a numeric attribute name within a Graph's vocabulary.
type AttrID int32

// InvalidNode is returned by lookups that find no node.
const InvalidNode NodeID = -1

// InvalidPred is returned by lookups that find no predicate.
const InvalidPred PredID = -1

// InvalidType is returned by lookups that find no type.
const InvalidType TypeID = -1

// InvalidAttr is returned by lookups that find no attribute.
const InvalidAttr AttrID = -1

// HalfEdge is one directed traversal option out of a node. Every stored edge
// (u --pred--> v) appears twice: as {To: v, Out: true} in u's adjacency and
// as {To: u, Out: false} in v's adjacency.
type HalfEdge struct {
	To   NodeID
	Pred PredID
	Out  bool // true when this half-edge follows the stored orientation
}

// AttrValue is one numeric attribute of a node.
type AttrValue struct {
	Attr  AttrID
	Value float64
}

// Graph is an immutable in-memory knowledge graph. Build one with a Builder
// or a loader. All exported methods are safe for concurrent readers.
type Graph struct {
	names []string      // node name, unique (entity disambiguation assumed)
	types [][]TypeID    // sorted type ids per node
	attrs [][]AttrValue // sorted by AttrID per node
	adj   [][]HalfEdge

	predNames []string
	typeNames []string
	attrNames []string

	nameIndex map[string]NodeID
	predIndex map[string]PredID
	typeIndex map[string]TypeID
	attrIndex map[string]AttrID
	byType    map[TypeID][]NodeID

	numEdges int
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.names) }

// NumEdges returns the number of stored (directed) edges.
func (g *Graph) NumEdges() int { return g.numEdges }

// NumPredicates returns the size of the predicate vocabulary.
func (g *Graph) NumPredicates() int { return len(g.predNames) }

// NumTypes returns the size of the type vocabulary.
func (g *Graph) NumTypes() int { return len(g.typeNames) }

// NumAttrs returns the size of the numeric attribute vocabulary.
func (g *Graph) NumAttrs() int { return len(g.attrNames) }

// Name returns the unique name of node u.
func (g *Graph) Name(u NodeID) string { return g.names[u] }

// Types returns the sorted type ids of node u. The returned slice must not
// be modified.
func (g *Graph) Types(u NodeID) []TypeID { return g.types[u] }

// HasType reports whether node u carries type t.
func (g *Graph) HasType(u NodeID, t TypeID) bool {
	ts := g.types[u]
	i := sort.Search(len(ts), func(i int) bool { return ts[i] >= t })
	return i < len(ts) && ts[i] == t
}

// SharesType reports whether node u carries at least one of the given types,
// the candidate-answer condition of Definition 4.
func (g *Graph) SharesType(u NodeID, ts []TypeID) bool {
	for _, t := range ts {
		if g.HasType(u, t) {
			return true
		}
	}
	return false
}

// Attr returns the value of attribute a on node u, and whether it is set.
func (g *Graph) Attr(u NodeID, a AttrID) (float64, bool) {
	as := g.attrs[u]
	i := sort.Search(len(as), func(i int) bool { return as[i].Attr >= a })
	if i < len(as) && as[i].Attr == a {
		return as[i].Value, true
	}
	return 0, false
}

// Attrs returns all numeric attributes of node u, sorted by AttrID. The
// returned slice must not be modified.
func (g *Graph) Attrs(u NodeID) []AttrValue { return g.attrs[u] }

// Neighbors returns the half-edges out of node u (both orientations). The
// returned slice must not be modified.
func (g *Graph) Neighbors(u NodeID) []HalfEdge { return g.adj[u] }

// Degree returns the number of half-edges at node u.
func (g *Graph) Degree(u NodeID) int { return len(g.adj[u]) }

// AvgDegree returns the average half-edge degree across all nodes.
func (g *Graph) AvgDegree() float64 {
	if len(g.adj) == 0 {
		return 0
	}
	return 2 * float64(g.numEdges) / float64(len(g.adj))
}

// NodeByName returns the node with the given unique name, or InvalidNode.
func (g *Graph) NodeByName(name string) NodeID {
	if id, ok := g.nameIndex[name]; ok {
		return id
	}
	return InvalidNode
}

// PredByName returns the predicate id for a label, or InvalidPred.
func (g *Graph) PredByName(name string) PredID {
	if id, ok := g.predIndex[name]; ok {
		return id
	}
	return InvalidPred
}

// TypeByName returns the type id for a label, or InvalidType.
func (g *Graph) TypeByName(name string) TypeID {
	if id, ok := g.typeIndex[name]; ok {
		return id
	}
	return InvalidType
}

// AttrByName returns the attribute id for a label, or InvalidAttr.
func (g *Graph) AttrByName(name string) AttrID {
	if id, ok := g.attrIndex[name]; ok {
		return id
	}
	return InvalidAttr
}

// PredName returns the label of predicate p.
func (g *Graph) PredName(p PredID) string { return g.predNames[p] }

// TypeName returns the label of type t.
func (g *Graph) TypeName(t TypeID) string { return g.typeNames[t] }

// AttrName returns the label of attribute a.
func (g *Graph) AttrName(a AttrID) string { return g.attrNames[a] }

// PredNames returns the full predicate vocabulary. The returned slice must
// not be modified.
func (g *Graph) PredNames() []string { return g.predNames }

// NodesByType returns all nodes carrying type t in ascending NodeID order.
// The returned slice must not be modified.
func (g *Graph) NodesByType(t TypeID) []NodeID { return g.byType[t] }

// EachEdge calls fn for every stored edge in its original orientation
// (src --pred--> dst). It stops early if fn returns false.
func (g *Graph) EachEdge(fn func(src NodeID, pred PredID, dst NodeID) bool) {
	for u, hes := range g.adj {
		for _, he := range hes {
			if he.Out {
				if !fn(NodeID(u), he.Pred, he.To) {
					return
				}
			}
		}
	}
}

// HasEdge reports whether an edge src --pred--> dst is stored.
func (g *Graph) HasEdge(src NodeID, pred PredID, dst NodeID) bool {
	for _, he := range g.adj[src] {
		if he.Out && he.To == dst && he.Pred == pred {
			return true
		}
	}
	return false
}

// String summarises the graph, handy in logs and the CLIs.
func (g *Graph) String() string {
	return fmt.Sprintf("kg.Graph{nodes: %d, edges: %d, types: %d, predicates: %d, attrs: %d}",
		g.NumNodes(), g.NumEdges(), g.NumTypes(), g.NumPredicates(), g.NumAttrs())
}
