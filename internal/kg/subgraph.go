package kg

// Bounded is the n-bounded neighbourhood of a start node: the induced
// subgraph over all nodes reachable within n hops (edges traversed in either
// direction), as used by Algorithm 1 (SSB) and as the scope of the
// semantic-aware random walk (§IV-A2). Node order is BFS discovery order,
// so Nodes[0] is always the start node.
type Bounded struct {
	Start NodeID
	N     int
	Nodes []NodeID
	Dist  map[NodeID]int // hop distance from Start for every included node
}

// BoundedSubgraph runs a breadth-first search from start up to n hops.
// n <= 0 yields only the start node.
func (g *Graph) BoundedSubgraph(start NodeID, n int) *Bounded {
	return BFS(g, start, n)
}

// Contains reports whether node u is inside the bounded subgraph.
func (b *Bounded) Contains(u NodeID) bool {
	_, ok := b.Dist[u]
	return ok
}

// Size returns the number of nodes in the bounded subgraph.
func (b *Bounded) Size() int { return len(b.Nodes) }

// CandidateAnswers returns the nodes of the bounded subgraph (excluding the
// start node) that share at least one of the given types — the candidate
// answer set A of Definition 4 restricted to the n-bounded search space.
func (b *Bounded) CandidateAnswers(g ReadGraph, types []TypeID) []NodeID {
	var out []NodeID
	for _, u := range b.Nodes {
		if u == b.Start {
			continue
		}
		if g.SharesType(u, types) {
			out = append(out, u)
		}
	}
	return out
}

// InducedEdgeCount returns the number of stored edges with both endpoints in
// the bounded subgraph; the walk engine's transition matrix has one row
// entry per half of each such edge.
func (b *Bounded) InducedEdgeCount(g ReadGraph) int {
	count := 0
	for _, u := range b.Nodes {
		for _, he := range g.Neighbors(u) {
			if he.Out && b.Contains(he.To) {
				count++
			}
		}
	}
	return count
}
