package kg

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"testing"
)

// Version-1 snapshots carry the magic header and round-trip the epoch.
func TestSnapshotHeaderRoundTrip(t *testing.T) {
	g := figureGraph(t)
	var buf bytes.Buffer
	if err := g.SaveEpoch(&buf, 42); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte(snapshotMagic)) {
		t.Fatalf("snapshot does not start with the magic, got %q", buf.Bytes()[:8])
	}
	g2, epoch, err := LoadEpoch(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 42 {
		t.Fatalf("epoch = %d, want 42", epoch)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed counts: %v vs %v", g2, g)
	}
}

// Version-0 files — a bare gob stream, as written before the header existed
// — must keep loading, reporting epoch 0.
func TestSnapshotVersion0Compat(t *testing.T) {
	g := figureGraph(t)
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	enc := gob.NewEncoder(bw)
	s := snapshot{
		Names: g.names, Types: g.types, Attrs: g.attrs, Adj: g.adj,
		PredNames: g.predNames, TypeNames: g.typeNames, AttrNames: g.attrNames,
		NumEdges: g.numEdges,
	}
	if err := enc.Encode(&s); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}

	g2, epoch, err := LoadEpoch(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("version-0 stream rejected: %v", err)
	}
	if epoch != 0 {
		t.Fatalf("version-0 epoch = %d, want 0", epoch)
	}
	if g2.NumNodes() != g.NumNodes() {
		t.Fatalf("version-0 round trip changed node count")
	}
}

// Corrupt and foreign files fail with the typed sentinel, not an opaque gob
// error.
func TestSnapshotBadFiles(t *testing.T) {
	g := figureGraph(t)
	var good bytes.Buffer
	if err := g.SaveEpoch(&good, 1); err != nil {
		t.Fatal(err)
	}

	futureVersion := append([]byte(snapshotMagic), make([]byte, 12)...)
	binary.LittleEndian.PutUint32(futureVersion[8:12], 99)

	cases := []struct {
		name string
		data []byte
	}{
		{"garbage", []byte("definitely not a snapshot")},
		{"empty", nil},
		{"truncated header", []byte(snapshotMagic + "ab")},
		{"future version", futureVersion},
		{"truncated payload", good.Bytes()[:len(good.Bytes())/2]},
	}
	for _, tc := range cases {
		if _, _, err := LoadEpoch(bytes.NewReader(tc.data)); !errors.Is(err, ErrBadSnapshot) {
			t.Errorf("%s: err = %v, want ErrBadSnapshot", tc.name, err)
		}
	}
}

// Materialize must preserve every id assignment and all content.
func TestMaterializeRoundTrip(t *testing.T) {
	g := figureGraph(t)
	m, err := Materialize(g)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumNodes() != g.NumNodes() || m.NumEdges() != g.NumEdges() ||
		m.NumPredicates() != g.NumPredicates() || m.NumTypes() != g.NumTypes() ||
		m.NumAttrs() != g.NumAttrs() {
		t.Fatalf("counts changed: %v vs %v", m, g)
	}
	for i := 0; i < g.NumNodes(); i++ {
		u := NodeID(i)
		if m.Name(u) != g.Name(u) {
			t.Fatalf("node %d renamed", i)
		}
		if len(m.Neighbors(u)) != len(g.Neighbors(u)) {
			t.Fatalf("node %d degree changed", i)
		}
		for _, av := range g.Attrs(u) {
			if v, ok := m.Attr(u, av.Attr); !ok || v != av.Value {
				t.Fatalf("node %d attr %d changed", i, av.Attr)
			}
		}
	}
	for p := 0; p < g.NumPredicates(); p++ {
		if m.PredName(PredID(p)) != g.PredName(PredID(p)) {
			t.Fatalf("predicate %d renamed", p)
		}
	}
}

// figureGraph builds a small graph inline (kgtest would be an import
// cycle); shape loosely after Figure 1.
func figureGraph(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder()
	de := b.AddNode("Germany", "Country")
	bmw := b.AddNode("BMW_320", "Automobile")
	vw := b.AddNode("Volkswagen", "Company")
	lam := b.AddNode("Lamando", "Automobile")
	for _, e := range []struct {
		src  NodeID
		pred string
		dst  NodeID
	}{
		{bmw, "assembly", de},
		{vw, "country", de},
		{vw, "product", lam},
	} {
		if err := b.AddEdge(e.src, e.pred, e.dst); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.SetAttr(bmw, "price", 35000); err != nil {
		t.Fatal(err)
	}
	if err := b.SetAttr(lam, "price", 24060.80); err != nil {
		t.Fatal(err)
	}
	return b.Build()
}
