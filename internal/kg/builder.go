package kg

import (
	"fmt"
	"sort"
)

// Builder accumulates nodes, edges and attributes and produces an immutable
// Graph. It is not safe for concurrent use.
type Builder struct {
	g        *Graph
	nodeSeen map[string]NodeID
	edgeSeen map[edgeKey]bool
	dedupe   bool
}

type edgeKey struct {
	src, dst NodeID
	pred     PredID
}

// NewBuilder returns an empty Builder. Duplicate edges (same src, pred, dst)
// are silently collapsed.
func NewBuilder() *Builder {
	return &Builder{
		g: &Graph{
			nameIndex: map[string]NodeID{},
			predIndex: map[string]PredID{},
			typeIndex: map[string]TypeID{},
			attrIndex: map[string]AttrID{},
			byType:    map[TypeID][]NodeID{},
		},
		nodeSeen: map[string]NodeID{},
		edgeSeen: map[edgeKey]bool{},
		dedupe:   true,
	}
}

// AddNode inserts a node with the given unique name and types, returning its
// id. Adding an existing name returns the existing node and merges any new
// types into it (knowledge graphs are assembled from multiple sources, so
// type information may arrive incrementally).
func (b *Builder) AddNode(name string, types ...string) NodeID {
	if id, ok := b.nodeSeen[name]; ok {
		for _, t := range types {
			b.addTypeTo(id, t)
		}
		return id
	}
	id := NodeID(len(b.g.names))
	b.g.names = append(b.g.names, name)
	b.g.types = append(b.g.types, nil)
	b.g.attrs = append(b.g.attrs, nil)
	b.g.adj = append(b.g.adj, nil)
	b.g.nameIndex[name] = id
	b.nodeSeen[name] = id
	for _, t := range types {
		b.addTypeTo(id, t)
	}
	return id
}

func (b *Builder) addTypeTo(id NodeID, t string) {
	tid := b.internType(t)
	ts := b.g.types[id]
	i := sort.Search(len(ts), func(i int) bool { return ts[i] >= tid })
	if i < len(ts) && ts[i] == tid {
		return
	}
	ts = append(ts, 0)
	copy(ts[i+1:], ts[i:])
	ts[i] = tid
	b.g.types[id] = ts
}

func (b *Builder) internType(t string) TypeID {
	if id, ok := b.g.typeIndex[t]; ok {
		return id
	}
	id := TypeID(len(b.g.typeNames))
	b.g.typeNames = append(b.g.typeNames, t)
	b.g.typeIndex[t] = id
	return id
}

func (b *Builder) internPred(p string) PredID {
	if id, ok := b.g.predIndex[p]; ok {
		return id
	}
	id := PredID(len(b.g.predNames))
	b.g.predNames = append(b.g.predNames, p)
	b.g.predIndex[p] = id
	return id
}

func (b *Builder) internAttr(a string) AttrID {
	if id, ok := b.g.attrIndex[a]; ok {
		return id
	}
	id := AttrID(len(b.g.attrNames))
	b.g.attrNames = append(b.g.attrNames, a)
	b.g.attrIndex[a] = id
	return id
}

// AddEdge inserts the directed edge src --pred--> dst. Both endpoints must
// already exist. Self-loops are rejected: the only self-loop in the system
// is the virtual aperiodicity loop added by the walk engine (§IV-A2), which
// is never materialised in storage.
func (b *Builder) AddEdge(src NodeID, pred string, dst NodeID) error {
	if int(src) >= len(b.g.names) || src < 0 {
		return fmt.Errorf("kg: AddEdge: source node %d out of range", src)
	}
	if int(dst) >= len(b.g.names) || dst < 0 {
		return fmt.Errorf("kg: AddEdge: destination node %d out of range", dst)
	}
	if src == dst {
		return fmt.Errorf("kg: AddEdge: self-loop on node %q rejected", b.g.names[src])
	}
	pid := b.internPred(pred)
	k := edgeKey{src: src, dst: dst, pred: pid}
	if b.dedupe && b.edgeSeen[k] {
		return nil
	}
	b.edgeSeen[k] = true
	b.g.adj[src] = append(b.g.adj[src], HalfEdge{To: dst, Pred: pid, Out: true})
	b.g.adj[dst] = append(b.g.adj[dst], HalfEdge{To: src, Pred: pid, Out: false})
	b.g.numEdges++
	return nil
}

// SetAttr sets numeric attribute name=value on node u, overwriting any
// previous value.
func (b *Builder) SetAttr(u NodeID, name string, value float64) error {
	if int(u) >= len(b.g.names) || u < 0 {
		return fmt.Errorf("kg: SetAttr: node %d out of range", u)
	}
	aid := b.internAttr(name)
	as := b.g.attrs[u]
	i := sort.Search(len(as), func(i int) bool { return as[i].Attr >= aid })
	if i < len(as) && as[i].Attr == aid {
		as[i].Value = value
		return nil
	}
	as = append(as, AttrValue{})
	copy(as[i+1:], as[i:])
	as[i] = AttrValue{Attr: aid, Value: value}
	b.g.attrs[u] = as
	return nil
}

// NodeByName returns the id of a previously added node, or InvalidNode.
func (b *Builder) NodeByName(name string) NodeID {
	if id, ok := b.nodeSeen[name]; ok {
		return id
	}
	return InvalidNode
}

// NumNodes returns the number of nodes added so far.
func (b *Builder) NumNodes() int { return len(b.g.names) }

// Build finalises the graph: type→nodes index is materialised and the
// builder is reset so the Graph can no longer be mutated through it.
func (b *Builder) Build() *Graph {
	g := b.g
	for id := range g.names {
		for _, t := range g.types[id] {
			g.byType[t] = append(g.byType[t], NodeID(id))
		}
	}
	// NodeIDs were appended in ascending order, so byType lists are sorted.
	b.g = nil
	b.nodeSeen = nil
	b.edgeSeen = nil
	return g
}
