package kg

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// snapshot is the gob wire form of a Graph. Only the primary data travels;
// indexes are rebuilt on load, keeping snapshots small and forward-portable.
type snapshot struct {
	Names     []string
	Types     [][]TypeID
	Attrs     [][]AttrValue
	Adj       [][]HalfEdge
	PredNames []string
	TypeNames []string
	AttrNames []string
	NumEdges  int
}

// Save writes a binary snapshot of the graph.
func (g *Graph) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := gob.NewEncoder(bw)
	s := snapshot{
		Names:     g.names,
		Types:     g.types,
		Attrs:     g.attrs,
		Adj:       g.adj,
		PredNames: g.predNames,
		TypeNames: g.typeNames,
		AttrNames: g.attrNames,
		NumEdges:  g.numEdges,
	}
	if err := enc.Encode(&s); err != nil {
		return fmt.Errorf("kg: save: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("kg: save: %w", err)
	}
	return nil
}

// Load reads a snapshot written by Save and rebuilds all indexes.
func Load(r io.Reader) (*Graph, error) {
	dec := gob.NewDecoder(bufio.NewReader(r))
	var s snapshot
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("kg: load: %w", err)
	}
	g := &Graph{
		names:     s.Names,
		types:     s.Types,
		attrs:     s.Attrs,
		adj:       s.Adj,
		predNames: s.PredNames,
		typeNames: s.TypeNames,
		attrNames: s.AttrNames,
		numEdges:  s.NumEdges,
		nameIndex: make(map[string]NodeID, len(s.Names)),
		predIndex: make(map[string]PredID, len(s.PredNames)),
		typeIndex: make(map[string]TypeID, len(s.TypeNames)),
		attrIndex: make(map[string]AttrID, len(s.AttrNames)),
		byType:    map[TypeID][]NodeID{},
	}
	if len(g.types) != len(g.names) || len(g.attrs) != len(g.names) || len(g.adj) != len(g.names) {
		return nil, fmt.Errorf("kg: load: inconsistent snapshot (nodes %d, types %d, attrs %d, adj %d)",
			len(g.names), len(g.types), len(g.attrs), len(g.adj))
	}
	for i, n := range g.names {
		if _, dup := g.nameIndex[n]; dup {
			return nil, fmt.Errorf("kg: load: duplicate node name %q", n)
		}
		g.nameIndex[n] = NodeID(i)
	}
	for i, p := range g.predNames {
		g.predIndex[p] = PredID(i)
	}
	for i, t := range g.typeNames {
		g.typeIndex[t] = TypeID(i)
	}
	for i, a := range g.attrNames {
		g.attrIndex[a] = AttrID(i)
	}
	for id, ts := range g.types {
		for _, t := range ts {
			if int(t) >= len(g.typeNames) || t < 0 {
				return nil, fmt.Errorf("kg: load: node %d has unknown type id %d", id, t)
			}
			g.byType[t] = append(g.byType[t], NodeID(id))
		}
	}
	for id, hes := range g.adj {
		for _, he := range hes {
			if int(he.To) >= len(g.names) || he.To < 0 {
				return nil, fmt.Errorf("kg: load: node %d has edge to unknown node %d", id, he.To)
			}
			if int(he.Pred) >= len(g.predNames) || he.Pred < 0 {
				return nil, fmt.Errorf("kg: load: node %d has edge with unknown predicate %d", id, he.Pred)
			}
		}
	}
	return g, nil
}

// SaveFile writes a snapshot to path, creating or truncating it.
func (g *Graph) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("kg: %w", err)
	}
	if err := g.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a snapshot from path.
func LoadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("kg: %w", err)
	}
	defer f.Close()
	return Load(f)
}
