package kg

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Snapshot framing. Version-0 files (everything written before the header
// existed) are a bare gob stream; version-1 files carry a fixed magic,
// a format version and the live-graph epoch the snapshot was taken at;
// version-2 files add the payload length and a CRC32-C of the payload, so
// a truncated or bit-flipped snapshot fails with a typed error before the
// gob decoder can misread it. Loaders read every version ≤ snapshotVersion.
const (
	snapshotMagic   = "KGAQSNP1" // 8 bytes, constant across versions
	snapshotVersion = 2

	// maxSnapshotPayload bounds the allocation a version-2 header can demand,
	// so a flipped length field fails typed instead of exhausting memory.
	maxSnapshotPayload = 4 << 30
)

var snapCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrBadSnapshot reports a snapshot file the loader refuses: wrong magic
// after a partial match, an unknown format version, or a corrupt payload.
// Match with errors.Is; the wrapping message carries the detail.
var ErrBadSnapshot = errors.New("kg: bad snapshot")

// snapshot is the gob wire form of a Graph. Only the primary data travels;
// indexes are rebuilt on load, keeping snapshots small and forward-portable.
type snapshot struct {
	Names     []string
	Types     [][]TypeID
	Attrs     [][]AttrValue
	Adj       [][]HalfEdge
	PredNames []string
	TypeNames []string
	AttrNames []string
	NumEdges  int
}

// Save writes a binary snapshot of the graph at epoch 0.
func (g *Graph) Save(w io.Writer) error {
	return g.SaveEpoch(w, 0)
}

// SaveEpoch writes a binary snapshot of the graph, recording the live-graph
// epoch it was materialised at: magic, format version, epoch, payload length
// and CRC32-C, then the gob payload. The payload is staged in memory so the
// header can vouch for its exact bytes.
func (g *Graph) SaveEpoch(w io.Writer, epoch uint64) error {
	var payload bytes.Buffer
	s := snapshot{
		Names:     g.names,
		Types:     g.types,
		Attrs:     g.attrs,
		Adj:       g.adj,
		PredNames: g.predNames,
		TypeNames: g.typeNames,
		AttrNames: g.attrNames,
		NumEdges:  g.numEdges,
	}
	if err := gob.NewEncoder(&payload).Encode(&s); err != nil {
		return fmt.Errorf("kg: save: %w", err)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return fmt.Errorf("kg: save: %w", err)
	}
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], snapshotVersion)
	binary.LittleEndian.PutUint64(hdr[4:12], epoch)
	binary.LittleEndian.PutUint64(hdr[12:20], uint64(payload.Len()))
	binary.LittleEndian.PutUint32(hdr[20:24], crc32.Checksum(payload.Bytes(), snapCastagnoli))
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("kg: save: %w", err)
	}
	if _, err := bw.Write(payload.Bytes()); err != nil {
		return fmt.Errorf("kg: save: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("kg: save: %w", err)
	}
	return nil
}

// Load reads a snapshot written by Save/SaveEpoch and rebuilds all indexes.
func Load(r io.Reader) (*Graph, error) {
	g, _, err := LoadEpoch(r)
	return g, err
}

// LoadEpoch is Load plus the epoch recorded in the snapshot header
// (0 for version-0 files, which predate epochs). Version-0 files — a bare
// gob stream with no header — remain readable; anything that is neither a
// headered snapshot nor a decodable version-0 stream fails with an error
// matching ErrBadSnapshot.
func LoadEpoch(r io.Reader) (*Graph, uint64, error) {
	br := bufio.NewReader(r)
	epoch := uint64(0)
	var payload io.Reader = br
	head, err := br.Peek(len(snapshotMagic))
	if err != nil && err != io.EOF {
		return nil, 0, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if string(head) == snapshotMagic {
		if _, err := br.Discard(len(snapshotMagic)); err != nil {
			return nil, 0, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
		}
		var hdr [12]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return nil, 0, fmt.Errorf("%w: truncated header: %v", ErrBadSnapshot, err)
		}
		version := binary.LittleEndian.Uint32(hdr[0:4])
		if version == 0 || version > snapshotVersion {
			return nil, 0, fmt.Errorf("%w: unsupported format version %d (this build reads ≤ %d)",
				ErrBadSnapshot, version, snapshotVersion)
		}
		epoch = binary.LittleEndian.Uint64(hdr[4:12])
		if version >= 2 {
			// Version 2 adds payload length and CRC32-C: verify the exact
			// bytes before handing anything to the gob decoder.
			var chk [12]byte
			if _, err := io.ReadFull(br, chk[:]); err != nil {
				return nil, 0, fmt.Errorf("%w: truncated header: %v", ErrBadSnapshot, err)
			}
			length := binary.LittleEndian.Uint64(chk[0:8])
			sum := binary.LittleEndian.Uint32(chk[8:12])
			if length > maxSnapshotPayload {
				return nil, 0, fmt.Errorf("%w: payload length %d exceeds limit", ErrBadSnapshot, length)
			}
			buf := make([]byte, length)
			if _, err := io.ReadFull(br, buf); err != nil {
				return nil, 0, fmt.Errorf("%w: truncated payload (want %d bytes): %v", ErrBadSnapshot, length, err)
			}
			if got := crc32.Checksum(buf, snapCastagnoli); got != sum {
				return nil, 0, fmt.Errorf("%w: payload checksum mismatch (got %08x, want %08x)", ErrBadSnapshot, got, sum)
			}
			payload = bytes.NewReader(buf)
		}
	}
	// Headerless streams fall through here: version 0, epoch 0.
	dec := gob.NewDecoder(payload)
	var s snapshot
	if err := dec.Decode(&s); err != nil {
		return nil, 0, fmt.Errorf("%w: decode: %v", ErrBadSnapshot, err)
	}
	g, err := fromSnapshot(&s)
	if err != nil {
		return nil, 0, err
	}
	return g, epoch, nil
}

// fromSnapshot rebuilds a Graph (and all its indexes) from the wire form,
// validating internal consistency.
func fromSnapshot(s *snapshot) (*Graph, error) {
	g := &Graph{
		names:     s.Names,
		types:     s.Types,
		attrs:     s.Attrs,
		adj:       s.Adj,
		predNames: s.PredNames,
		typeNames: s.TypeNames,
		attrNames: s.AttrNames,
		numEdges:  s.NumEdges,
		nameIndex: make(map[string]NodeID, len(s.Names)),
		predIndex: make(map[string]PredID, len(s.PredNames)),
		typeIndex: make(map[string]TypeID, len(s.TypeNames)),
		attrIndex: make(map[string]AttrID, len(s.AttrNames)),
		byType:    map[TypeID][]NodeID{},
	}
	if len(g.types) != len(g.names) || len(g.attrs) != len(g.names) || len(g.adj) != len(g.names) {
		return nil, fmt.Errorf("%w: inconsistent snapshot (nodes %d, types %d, attrs %d, adj %d)",
			ErrBadSnapshot, len(g.names), len(g.types), len(g.attrs), len(g.adj))
	}
	for i, n := range g.names {
		if _, dup := g.nameIndex[n]; dup {
			return nil, fmt.Errorf("%w: duplicate node name %q", ErrBadSnapshot, n)
		}
		g.nameIndex[n] = NodeID(i)
	}
	for i, p := range g.predNames {
		g.predIndex[p] = PredID(i)
	}
	for i, t := range g.typeNames {
		g.typeIndex[t] = TypeID(i)
	}
	for i, a := range g.attrNames {
		g.attrIndex[a] = AttrID(i)
	}
	for id, ts := range g.types {
		for _, t := range ts {
			if int(t) >= len(g.typeNames) || t < 0 {
				return nil, fmt.Errorf("%w: node %d has unknown type id %d", ErrBadSnapshot, id, t)
			}
			g.byType[t] = append(g.byType[t], NodeID(id))
		}
	}
	for id, hes := range g.adj {
		for _, he := range hes {
			if int(he.To) >= len(g.names) || he.To < 0 {
				return nil, fmt.Errorf("%w: node %d has edge to unknown node %d", ErrBadSnapshot, id, he.To)
			}
			if int(he.Pred) >= len(g.predNames) || he.Pred < 0 {
				return nil, fmt.Errorf("%w: node %d has edge with unknown predicate %d", ErrBadSnapshot, id, he.Pred)
			}
		}
	}
	return g, nil
}

// SaveFile writes a snapshot to path, creating or truncating it.
func (g *Graph) SaveFile(path string) error {
	return g.SaveFileEpoch(path, 0)
}

// SaveFileEpoch writes a snapshot at the given epoch to path.
func (g *Graph) SaveFileEpoch(path string, epoch uint64) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("kg: %w", err)
	}
	if err := g.SaveEpoch(f, epoch); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a snapshot from path.
func LoadFile(path string) (*Graph, error) {
	g, _, err := LoadFileEpoch(path)
	return g, err
}

// LoadFileEpoch reads a snapshot and its recorded epoch from path.
func LoadFileEpoch(path string) (*Graph, uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("kg: %w", err)
	}
	defer f.Close()
	return LoadEpoch(f)
}
