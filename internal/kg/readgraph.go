package kg

import "fmt"

// ReadGraph is the read-only view of a knowledge graph that every consumer
// of graph data — the walkers, the validator, the estimators, the serving
// layer — programs against. Two implementations exist: the immutable *Graph
// itself and the copy-on-write mutation overlay of internal/live, which
// layers a delta of pending writes over a compacted base. Implementations
// must be safe for unrestricted concurrent readers; slices returned by
// accessor methods are shared and must not be modified.
type ReadGraph interface {
	// NumNodes returns the number of nodes.
	NumNodes() int
	// NumEdges returns the number of stored (directed) edges.
	NumEdges() int
	// NumPredicates returns the size of the predicate vocabulary.
	NumPredicates() int
	// NumTypes returns the size of the type vocabulary.
	NumTypes() int
	// NumAttrs returns the size of the numeric attribute vocabulary.
	NumAttrs() int

	// Name returns the unique name of node u.
	Name(u NodeID) string
	// Types returns the sorted type ids of node u.
	Types(u NodeID) []TypeID
	// HasType reports whether node u carries type t.
	HasType(u NodeID, t TypeID) bool
	// SharesType reports whether node u carries at least one of the types.
	SharesType(u NodeID, ts []TypeID) bool
	// Attr returns the value of attribute a on node u, and whether it is set.
	Attr(u NodeID, a AttrID) (float64, bool)
	// Attrs returns all numeric attributes of node u, sorted by AttrID.
	Attrs(u NodeID) []AttrValue
	// Neighbors returns the half-edges out of node u (both orientations).
	Neighbors(u NodeID) []HalfEdge
	// Degree returns the number of half-edges at node u.
	Degree(u NodeID) int

	// NodeByName returns the node with the given unique name, or InvalidNode.
	NodeByName(name string) NodeID
	// PredByName returns the predicate id for a label, or InvalidPred.
	PredByName(name string) PredID
	// TypeByName returns the type id for a label, or InvalidType.
	TypeByName(name string) TypeID
	// AttrByName returns the attribute id for a label, or InvalidAttr.
	AttrByName(name string) AttrID
	// PredName returns the label of predicate p.
	PredName(p PredID) string
	// TypeName returns the label of type t.
	TypeName(t TypeID) string
	// AttrName returns the label of attribute a.
	AttrName(a AttrID) string
	// NodesByType returns all nodes carrying type t in ascending NodeID
	// order.
	NodesByType(t TypeID) []NodeID

	// EachEdge calls fn for every stored edge in its original orientation,
	// stopping early if fn returns false.
	EachEdge(fn func(src NodeID, pred PredID, dst NodeID) bool)
	// HasEdge reports whether an edge src --pred--> dst is stored.
	HasEdge(src NodeID, pred PredID, dst NodeID) bool
	// BoundedSubgraph runs a breadth-first search from start up to n hops.
	BoundedSubgraph(start NodeID, n int) *Bounded
}

var _ ReadGraph = (*Graph)(nil)

// BFS computes the n-bounded neighbourhood of start over any ReadGraph —
// the generic form of (*Graph).BoundedSubgraph that overlay implementations
// share.
func BFS(g ReadGraph, start NodeID, n int) *Bounded {
	b := &Bounded{
		Start: start,
		N:     n,
		Dist:  map[NodeID]int{start: 0},
		Nodes: []NodeID{start},
	}
	if n <= 0 {
		return b
	}
	frontier := []NodeID{start}
	for depth := 1; depth <= n && len(frontier) > 0; depth++ {
		var next []NodeID
		for _, u := range frontier {
			for _, he := range g.Neighbors(u) {
				if _, seen := b.Dist[he.To]; seen {
					continue
				}
				b.Dist[he.To] = depth
				b.Nodes = append(b.Nodes, he.To)
				next = append(next, he.To)
			}
		}
		frontier = next
	}
	return b
}

// Materialize copies an arbitrary ReadGraph into a fresh immutable *Graph,
// preserving every id assignment (node, predicate, type and attribute ids
// survive unchanged). It is the folding step of the live-graph compactor:
// the overlay's delta is baked into plain dense slices so subsequent reads
// pay no overlay indirection.
func Materialize(src ReadGraph) (*Graph, error) {
	n := src.NumNodes()
	g := &Graph{
		names:     make([]string, n),
		types:     make([][]TypeID, n),
		attrs:     make([][]AttrValue, n),
		adj:       make([][]HalfEdge, n),
		predNames: make([]string, src.NumPredicates()),
		typeNames: make([]string, src.NumTypes()),
		attrNames: make([]string, src.NumAttrs()),
		nameIndex: make(map[string]NodeID, n),
		predIndex: make(map[string]PredID, src.NumPredicates()),
		typeIndex: make(map[string]TypeID, src.NumTypes()),
		attrIndex: make(map[string]AttrID, src.NumAttrs()),
		byType:    map[TypeID][]NodeID{},
		numEdges:  src.NumEdges(),
	}
	for i := range g.predNames {
		g.predNames[i] = src.PredName(PredID(i))
		g.predIndex[g.predNames[i]] = PredID(i)
	}
	for i := range g.typeNames {
		g.typeNames[i] = src.TypeName(TypeID(i))
		g.typeIndex[g.typeNames[i]] = TypeID(i)
	}
	for i := range g.attrNames {
		g.attrNames[i] = src.AttrName(AttrID(i))
		g.attrIndex[g.attrNames[i]] = AttrID(i)
	}
	for i := 0; i < n; i++ {
		u := NodeID(i)
		name := src.Name(u)
		if _, dup := g.nameIndex[name]; dup {
			return nil, fmt.Errorf("kg: materialize: duplicate node name %q", name)
		}
		g.names[i] = name
		g.nameIndex[name] = u
		g.types[i] = append([]TypeID(nil), src.Types(u)...)
		g.attrs[i] = append([]AttrValue(nil), src.Attrs(u)...)
		g.adj[i] = append([]HalfEdge(nil), src.Neighbors(u)...)
		for _, t := range g.types[i] {
			g.byType[t] = append(g.byType[t], u)
		}
	}
	return g, nil
}
