package kg

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

const sampleNT = `
# Figure 1 extract
<BMW_320> <rdf:type> <Automobile> .
<Germany> <rdf:type> <Country> .
<BMW_320> <assembly> <Germany> .
<BMW_320> <price> "41250"^^xsd:double .
<BMW_320> <horsepower> "335" .
<Volkswagen> <rdf:type> <Company> .
<Audi_TT> <rdf:type> <Automobile> .
<Audi_TT> <assembly> <Volkswagen> .
<Volkswagen> <country> <Germany> .
`

func TestReadNTriples(t *testing.T) {
	g, errs := ReadNTriples(strings.NewReader(sampleNT), NTOptions{})
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if g.NumNodes() != 4 {
		t.Fatalf("NumNodes = %d, want 4", g.NumNodes())
	}
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", g.NumEdges())
	}
	bmw := g.NodeByName("BMW_320")
	if bmw == InvalidNode {
		t.Fatal("BMW_320 missing")
	}
	if !g.HasType(bmw, g.TypeByName("Automobile")) {
		t.Fatal("type triple not applied")
	}
	if v, ok := g.Attr(bmw, g.AttrByName("price")); !ok || v != 41250 {
		t.Fatalf("price = %v, %v", v, ok)
	}
	if v, ok := g.Attr(bmw, g.AttrByName("horsepower")); !ok || v != 335 {
		t.Fatalf("horsepower (untyped literal) = %v, %v", v, ok)
	}
}

func TestReadNTriplesFullIRIs(t *testing.T) {
	in := `<http://dbpedia.org/resource/BMW_320> <http://dbpedia.org/ontology/assembly> <http://dbpedia.org/resource/Germany> .`
	g, errs := ReadNTriples(strings.NewReader(in), NTOptions{})
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if g.NodeByName("BMW_320") == InvalidNode || g.NodeByName("Germany") == InvalidNode {
		t.Fatal("IRI shortening failed")
	}
	if g.PredByName("assembly") == InvalidPred {
		t.Fatal("predicate IRI shortening failed")
	}
}

func TestReadNTriplesMalformed(t *testing.T) {
	in := `
<a> <rdf:type> <T> .
this is not a triple
<b> <rdf:type> <T> .
<b> <p> "not-a-number" .
<c> missing brackets .
<a> <p> <b> .
`
	g, errs := ReadNTriples(strings.NewReader(in), NTOptions{})
	if len(errs) != 3 {
		t.Fatalf("errors = %d (%v), want 3", len(errs), errs)
	}
	var le *LoadError
	if !errors.As(errs[0], &le) {
		t.Fatalf("error type = %T, want *LoadError", errs[0])
	}
	if le.Line != 3 {
		t.Fatalf("first error line = %d, want 3", le.Line)
	}
	// The good triples must still have loaded.
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestReadNTriplesErrorBudget(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 10; i++ {
		sb.WriteString("garbage line\n")
	}
	_, errs := ReadNTriples(strings.NewReader(sb.String()), NTOptions{MaxErrors: 3})
	// 3 load errors plus the "too many errors" sentinel.
	if len(errs) != 4 {
		t.Fatalf("errors = %d, want 4", len(errs))
	}
	if !strings.Contains(errs[3].Error(), "too many errors") {
		t.Fatalf("missing abort sentinel: %v", errs[3])
	}
}

func TestReadNTriplesUntypedGetsThing(t *testing.T) {
	in := `<a> <p> <b> .`
	g, errs := ReadNTriples(strings.NewReader(in), NTOptions{})
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	a := g.NodeByName("a")
	if !g.HasType(a, g.TypeByName("Thing")) {
		t.Fatal("untyped node did not receive Thing type")
	}
}

func TestReadNTriplesStrictTypes(t *testing.T) {
	in := `<a> <p> <b> .`
	_, errs := ReadNTriples(strings.NewReader(in), NTOptions{StrictTypes: true})
	if len(errs) != 2 { // both a and b untyped
		t.Fatalf("errors = %d (%v), want 2", len(errs), errs)
	}
}

func TestTSVRoundTrip(t *testing.T) {
	g, errs := ReadNTriples(strings.NewReader(sampleNT), NTOptions{})
	if len(errs) != 0 {
		t.Fatalf("setup errors: %v", errs)
	}
	var nodes, edges bytes.Buffer
	if err := g.WriteTSV(&nodes, &edges); err != nil {
		t.Fatal(err)
	}
	g2, errs := ReadTSV(&nodes, &edges)
	if len(errs) != 0 {
		t.Fatalf("reload errors: %v", errs)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip mismatch: %v vs %v", g2, g)
	}
	bmw := g2.NodeByName("BMW_320")
	if v, ok := g2.Attr(bmw, g2.AttrByName("price")); !ok || v != 41250 {
		t.Fatalf("price after round trip = %v, %v", v, ok)
	}
	if !g2.HasEdge(bmw, g2.PredByName("assembly"), g2.NodeByName("Germany")) {
		t.Fatal("edge lost in round trip")
	}
}

func TestReadTSVMalformed(t *testing.T) {
	nodes := strings.NewReader("a\tT\tbadattr\nb\tT\tx=notnum\n")
	edges := strings.NewReader("a\tp\tb\nonly-two\tfields\n")
	g, errs := ReadTSV(nodes, edges)
	if len(errs) != 3 {
		t.Fatalf("errors = %d (%v), want 3", len(errs), errs)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestGobRoundTrip(t *testing.T) {
	g, errs := ReadNTriples(strings.NewReader(sampleNT), NTOptions{})
	if len(errs) != 0 {
		t.Fatalf("setup errors: %v", errs)
	}
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("snapshot mismatch: %v vs %v", g2, g)
	}
	bmw := g2.NodeByName("BMW_320")
	if bmw == InvalidNode {
		t.Fatal("name index not rebuilt")
	}
	if len(g2.NodesByType(g2.TypeByName("Automobile"))) != 2 {
		t.Fatal("type index not rebuilt")
	}
	if v, ok := g2.Attr(bmw, g2.AttrByName("price")); !ok || v != 41250 {
		t.Fatalf("price after snapshot = %v, %v", v, ok)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a gob stream")); err == nil {
		t.Fatal("Load accepted garbage")
	}
}

func TestParseNTLineVariants(t *testing.T) {
	cases := []struct {
		in      string
		wantErr bool
	}{
		{`<a> <p> <b> .`, false},
		{`<a> <p> "1.5" .`, false},
		{`<a> <p> "1.5"^^xsd:double .`, false},
		{`<a> <p>`, true},
		{`<a> <p> "unterminated .`, true},
		{`<a> <p> <b> extra .`, true},
		{`<> <p> <b> .`, true},
	}
	for _, c := range cases {
		_, _, _, _, err := parseNTLine(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("parseNTLine(%q) err = %v, wantErr %v", c.in, err, c.wantErr)
		}
	}
}
