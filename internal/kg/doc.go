// Package kg implements the knowledge-graph storage substrate: an in-memory
// property graph in the shape required by Definition 1 of the paper — typed,
// uniquely named entities carrying numeric attributes, connected by
// predicate-labelled directed edges.
//
// The package provides a builder for programmatic construction, loaders for
// an N-Triples subset and a TSV layout (real RDF tooling for Go is thin, so
// kgaq ships its own manual loaders), gob-based snapshot persistence, and the
// bounded-neighbourhood extraction used by both the SSB baseline and the
// semantic-aware random walk.
//
// Node adjacency is stored in both directions: the paper's random walk and
// subgraph matches traverse edges irrespective of orientation (e.g. the walk
// steps from Germany to BMW_320 against the direction of the assembly edge),
// while the original orientation is preserved on each half-edge for loaders,
// exact SPARQL-style matching and link-prediction baselines.
package kg
