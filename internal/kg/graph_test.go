package kg

import (
	"strings"
	"testing"
)

func buildSmall(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder()
	de := b.AddNode("Germany", "Country")
	bmw := b.AddNode("BMW_320", "Automobile", "MeanOfTransportation")
	vw := b.AddNode("Volkswagen", "Company")
	if err := b.AddEdge(bmw, "assembly", de); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(vw, "country", de); err != nil {
		t.Fatal(err)
	}
	if err := b.SetAttr(bmw, "price", 41250); err != nil {
		t.Fatal(err)
	}
	return b.Build()
}

func TestBuilderBasics(t *testing.T) {
	g := buildSmall(t)
	if g.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d, want 3", g.NumNodes())
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	if g.NumPredicates() != 2 {
		t.Fatalf("NumPredicates = %d, want 2", g.NumPredicates())
	}
	bmw := g.NodeByName("BMW_320")
	if bmw == InvalidNode {
		t.Fatal("BMW_320 not found")
	}
	if got := g.Name(bmw); got != "BMW_320" {
		t.Fatalf("Name = %q", got)
	}
	if v, ok := g.Attr(bmw, g.AttrByName("price")); !ok || v != 41250 {
		t.Fatalf("price = %v, %v; want 41250, true", v, ok)
	}
	if _, ok := g.Attr(bmw, InvalidAttr); ok {
		t.Fatal("Attr with invalid id should miss")
	}
}

func TestBuilderNodeMerge(t *testing.T) {
	b := NewBuilder()
	a1 := b.AddNode("X", "T1")
	a2 := b.AddNode("X", "T2")
	if a1 != a2 {
		t.Fatalf("same name produced two nodes: %d, %d", a1, a2)
	}
	g := b.Build()
	x := g.NodeByName("X")
	if !g.HasType(x, g.TypeByName("T1")) || !g.HasType(x, g.TypeByName("T2")) {
		t.Fatal("types not merged on re-add")
	}
}

func TestBuilderRejectsSelfLoop(t *testing.T) {
	b := NewBuilder()
	u := b.AddNode("u", "T")
	if err := b.AddEdge(u, "p", u); err == nil {
		t.Fatal("self-loop accepted")
	}
}

func TestBuilderRejectsBadIDs(t *testing.T) {
	b := NewBuilder()
	u := b.AddNode("u", "T")
	if err := b.AddEdge(u, "p", 42); err == nil {
		t.Fatal("edge to unknown node accepted")
	}
	if err := b.AddEdge(-1, "p", u); err == nil {
		t.Fatal("edge from negative node accepted")
	}
	if err := b.SetAttr(99, "a", 1); err == nil {
		t.Fatal("attr on unknown node accepted")
	}
}

func TestBuilderDedupesEdges(t *testing.T) {
	b := NewBuilder()
	u := b.AddNode("u", "T")
	v := b.AddNode("v", "T")
	for i := 0; i < 3; i++ {
		if err := b.AddEdge(u, "p", v); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1 (deduped)", g.NumEdges())
	}
}

func TestAdjacencyBothDirections(t *testing.T) {
	g := buildSmall(t)
	de := g.NodeByName("Germany")
	bmw := g.NodeByName("BMW_320")
	// Germany must see BMW via the reversed assembly half-edge.
	found := false
	for _, he := range g.Neighbors(de) {
		if he.To == bmw && !he.Out && g.PredName(he.Pred) == "assembly" {
			found = true
		}
	}
	if !found {
		t.Fatal("reverse half-edge missing on Germany")
	}
	// BMW sees Germany via the forward half-edge.
	found = false
	for _, he := range g.Neighbors(bmw) {
		if he.To == de && he.Out {
			found = true
		}
	}
	if !found {
		t.Fatal("forward half-edge missing on BMW_320")
	}
}

func TestHasEdge(t *testing.T) {
	g := buildSmall(t)
	de := g.NodeByName("Germany")
	bmw := g.NodeByName("BMW_320")
	p := g.PredByName("assembly")
	if !g.HasEdge(bmw, p, de) {
		t.Fatal("HasEdge(bmw, assembly, de) = false")
	}
	if g.HasEdge(de, p, bmw) {
		t.Fatal("HasEdge should respect orientation")
	}
}

func TestSharesType(t *testing.T) {
	g := buildSmall(t)
	bmw := g.NodeByName("BMW_320")
	auto := g.TypeByName("Automobile")
	country := g.TypeByName("Country")
	if !g.SharesType(bmw, []TypeID{country, auto}) {
		t.Fatal("SharesType missed Automobile")
	}
	if g.SharesType(bmw, []TypeID{country}) {
		t.Fatal("SharesType false positive")
	}
}

func TestNodesByType(t *testing.T) {
	g := buildSmall(t)
	autos := g.NodesByType(g.TypeByName("Automobile"))
	if len(autos) != 1 || g.Name(autos[0]) != "BMW_320" {
		t.Fatalf("NodesByType(Automobile) = %v", autos)
	}
	if got := g.NodesByType(InvalidType); len(got) != 0 {
		t.Fatalf("NodesByType(invalid) = %v, want empty", got)
	}
}

func TestEachEdgeAndStop(t *testing.T) {
	g := buildSmall(t)
	count := 0
	g.EachEdge(func(src NodeID, pred PredID, dst NodeID) bool {
		count++
		return true
	})
	if count != g.NumEdges() {
		t.Fatalf("EachEdge visited %d, want %d", count, g.NumEdges())
	}
	count = 0
	g.EachEdge(func(src NodeID, pred PredID, dst NodeID) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("EachEdge early stop visited %d, want 1", count)
	}
}

func TestLookupMisses(t *testing.T) {
	g := buildSmall(t)
	if g.NodeByName("nope") != InvalidNode {
		t.Fatal("NodeByName miss should be InvalidNode")
	}
	if g.PredByName("nope") != InvalidPred {
		t.Fatal("PredByName miss should be InvalidPred")
	}
	if g.TypeByName("nope") != InvalidType {
		t.Fatal("TypeByName miss should be InvalidType")
	}
	if g.AttrByName("nope") != InvalidAttr {
		t.Fatal("AttrByName miss should be InvalidAttr")
	}
}

func TestStringSummary(t *testing.T) {
	g := buildSmall(t)
	s := g.String()
	if !strings.Contains(s, "nodes: 3") || !strings.Contains(s, "edges: 2") {
		t.Fatalf("String() = %q", s)
	}
}

func TestAvgDegree(t *testing.T) {
	g := buildSmall(t)
	// 2 edges → 4 half-edges across 3 nodes.
	want := 4.0 / 3.0
	if got := g.AvgDegree(); got != want {
		t.Fatalf("AvgDegree = %v, want %v", got, want)
	}
}

func TestSetAttrOverwrite(t *testing.T) {
	b := NewBuilder()
	u := b.AddNode("u", "T")
	if err := b.SetAttr(u, "a", 1); err != nil {
		t.Fatal(err)
	}
	if err := b.SetAttr(u, "a", 2); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	if v, _ := g.Attr(g.NodeByName("u"), g.AttrByName("a")); v != 2 {
		t.Fatalf("attr after overwrite = %v, want 2", v)
	}
	if len(g.Attrs(g.NodeByName("u"))) != 1 {
		t.Fatal("overwrite created a duplicate attribute")
	}
}
