package admission

import "kgaq/internal/obs"

// Admission-tier metrics, mirroring the controller's atomic counters into
// the process registry. Gauges (queue depth, in-flight) are refreshed at
// the admission/release transitions they change on, so a scrape between
// transitions reads the last settled value.
var (
	metAdmitted = obs.Default().Counter("kgaq_admission_admitted_total",
		"Requests granted an execution slot.")
	metShed = obs.Default().CounterVec("kgaq_admission_shed_total",
		"Requests shed before execution, by reason (rate_limited, queue_full, draining).",
		"reason")
	metRetryAfterSeconds = obs.Default().Counter("kgaq_admission_retry_after_seconds_total",
		"Sum of Retry-After hints issued with sheds, in seconds.")
	metDegraded = obs.Default().Counter("kgaq_admission_degraded_total",
		"Requests completed with a pressure- or deadline-relaxed error bound.")
	metCompleted = obs.Default().CounterVec("kgaq_admission_completed_total",
		"Released grants by outcome (ok, degraded, error).", "outcome")
	metInFlight = obs.Default().Gauge("kgaq_admission_inflight",
		"Execution slots currently held.")
	metQueueDepth = obs.Default().Gauge("kgaq_admission_queue_depth",
		"Requests waiting for an execution slot.")
	metQueueWait = obs.Default().Histogram("kgaq_admission_queue_wait_seconds",
		"Time queued requests waited for their slot.", obs.DefBuckets)
)

func shedMetrics(reason string, s *Shed) *Shed {
	metShed.With(reason).Inc()
	metRetryAfterSeconds.Add(s.RetryAfter.Seconds())
	return s
}
