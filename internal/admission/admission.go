package admission

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Sentinel errors an Admit call can shed with. They arrive wrapped in a
// *Shed carrying the Retry-After hint.
var (
	// ErrRateLimited: the client exhausted its token bucket.
	ErrRateLimited = errors.New("admission: client rate limit exceeded")
	// ErrQueueFull: every execution slot is busy and the wait queue is at
	// capacity — the fast-shed backpressure signal.
	ErrQueueFull = errors.New("admission: work queue full")
	// ErrDraining: the controller is draining for shutdown; queued waiters
	// are shed with this too, so a drain never waits on unstarted work.
	ErrDraining = errors.New("admission: draining")
)

// Shed wraps a shedding sentinel with the retry hint the transport should
// surface (the Retry-After header, for HTTP).
type Shed struct {
	Err        error
	RetryAfter time.Duration
}

func (s *Shed) Error() string { return s.Err.Error() }
func (s *Shed) Unwrap() error { return s.Err }

// Config bounds the serving tier. Zero values mean the listed defaults.
type Config struct {
	// MaxInFlight is the number of requests executing concurrently
	// (default 2×GOMAXPROCS — queries are CPU-bound).
	MaxInFlight int
	// MaxQueue bounds requests waiting for a slot (default 4×MaxInFlight).
	// Arrivals beyond MaxInFlight+MaxQueue shed immediately.
	MaxQueue int
	// PerClientRate is each client's sustained request budget in
	// requests/second; 0 disables per-client rate limiting.
	PerClientRate float64
	// PerClientBurst is the token-bucket depth (default max(1, ⌈rate⌉)).
	PerClientBurst int
	// DegradePressure is the queue-fill fraction beyond which grants start
	// recommending relaxed error bounds (default 0.5).
	DegradePressure float64
	// MaxErrorBound is the honesty floor for degradation: the loosest
	// effective error bound a grant may recommend. 0 disables
	// pressure-based degradation (shedding still applies).
	MaxErrorBound float64
	// RetryAfter is the retry hint attached to queue-full and draining
	// sheds (default 1s). Rate-limit sheds hint the bucket refill time.
	RetryAfter time.Duration
	// LatencyWindow is the sliding window (completed requests) the SLO
	// percentiles are computed over (default 1024).
	LatencyWindow int
	// SLOTargetP99 is the serving latency objective; Stats.SLOOK reports
	// whether the window's p99 meets it (always true when 0).
	SLOTargetP99 time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxInFlight
	}
	if c.PerClientBurst <= 0 {
		c.PerClientBurst = int(c.PerClientRate + 0.999)
		if c.PerClientBurst < 1 {
			c.PerClientBurst = 1
		}
	}
	if c.DegradePressure <= 0 || c.DegradePressure >= 1 {
		c.DegradePressure = 0.5
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.LatencyWindow <= 0 {
		c.LatencyWindow = 1024
	}
	return c
}

// Controller admits requests into a bounded serving tier. All methods are
// safe for concurrent use.
type Controller struct {
	cfg   Config
	slots chan struct{} // buffered to MaxInFlight; send = acquire

	queued   atomic.Int64
	draining atomic.Bool
	drainCh  chan struct{} // closed by Drain: sheds every queued waiter
	drainMu  sync.Mutex

	admitted       atomic.Uint64
	completed      atomic.Uint64
	failed         atomic.Uint64
	degraded       atomic.Uint64
	shedQueueFull  atomic.Uint64
	shedRateLimit  atomic.Uint64
	shedDraining   atomic.Uint64
	queueNanos     atomic.Int64 // total queued wait, for the mean
	queuedRequests atomic.Uint64

	buckets *bucketSet
	lat     *latencyWindow
}

// New builds a controller over the (defaulted) config.
func New(cfg Config) *Controller {
	cfg = cfg.withDefaults()
	return &Controller{
		cfg:     cfg,
		slots:   make(chan struct{}, cfg.MaxInFlight),
		drainCh: make(chan struct{}),
		buckets: newBucketSet(cfg.PerClientRate, cfg.PerClientBurst),
		lat:     newLatencyWindow(cfg.LatencyWindow),
	}
}

// Config returns the effective (defaulted) configuration.
func (c *Controller) Config() Config { return c.cfg }

// Admit blocks until the request holds an execution slot, then returns its
// Grant. It sheds instead of blocking when the client is over its rate
// budget, the wait queue is full, or the controller is draining — all
// returned as a *Shed wrapping the matching sentinel. A waiter whose ctx
// ends before a slot frees leaves the queue and returns ctx's error.
func (c *Controller) Admit(ctx context.Context, client string) (*Grant, error) {
	if c.draining.Load() {
		c.shedDraining.Add(1)
		return nil, shedMetrics("draining", &Shed{Err: ErrDraining, RetryAfter: c.cfg.RetryAfter})
	}
	if c.cfg.PerClientRate > 0 {
		if ok, wait := c.buckets.take(client, time.Now()); !ok {
			c.shedRateLimit.Add(1)
			return nil, shedMetrics("rate_limited", &Shed{Err: fmt.Errorf("%w (client %q)", ErrRateLimited, client), RetryAfter: wait})
		}
	}
	// Pressure is sampled at arrival: the queue fill the decision to degrade
	// is based on, before this request joins it.
	pressure := float64(c.queued.Load()) / float64(c.cfg.MaxQueue)
	if pressure > 1 {
		pressure = 1
	}
	begin := time.Now()
	select {
	case c.slots <- struct{}{}: // free slot, no queueing
		c.admitted.Add(1)
		metAdmitted.Inc()
		metInFlight.Set(float64(len(c.slots)))
		return &Grant{c: c, pressure: pressure}, nil
	default:
	}
	if q := c.queued.Add(1); q > int64(c.cfg.MaxQueue) {
		c.queued.Add(-1)
		c.shedQueueFull.Add(1)
		return nil, shedMetrics("queue_full", &Shed{Err: ErrQueueFull, RetryAfter: c.cfg.RetryAfter})
	}
	metQueueDepth.Set(float64(c.queued.Load()))
	defer func() {
		c.queued.Add(-1)
		metQueueDepth.Set(float64(c.queued.Load()))
	}()
	select {
	case c.slots <- struct{}{}:
		wait := time.Since(begin)
		c.admitted.Add(1)
		c.queuedRequests.Add(1)
		c.queueNanos.Add(int64(wait))
		metAdmitted.Inc()
		metInFlight.Set(float64(len(c.slots)))
		metQueueWait.Observe(wait.Seconds())
		return &Grant{c: c, pressure: pressure, queuedFor: wait}, nil
	case <-c.drainCh:
		c.shedDraining.Add(1)
		return nil, shedMetrics("draining", &Shed{Err: ErrDraining, RetryAfter: c.cfg.RetryAfter})
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Drain stops admitting: new arrivals and queued waiters shed with
// ErrDraining while requests already holding a slot run to completion.
// Drain returns once every slot is free (or ctx ends first). It is
// idempotent.
func (c *Controller) Drain(ctx context.Context) error {
	c.draining.Store(true)
	c.drainMu.Lock()
	select {
	case <-c.drainCh:
	default:
		close(c.drainCh)
	}
	c.drainMu.Unlock()
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for len(c.slots) > 0 {
		select {
		case <-ctx.Done():
			return fmt.Errorf("admission: drain: %d requests still in flight: %w", len(c.slots), ctx.Err())
		case <-tick.C:
		}
	}
	return nil
}

// Outcome classifies a completed request for the SLO counters.
type Outcome int

const (
	// OutcomeOK: completed normally.
	OutcomeOK Outcome = iota
	// OutcomeDegraded: completed with a relaxed (but honest) error bound.
	OutcomeDegraded
	// OutcomeError: the execution failed.
	OutcomeError
)

// Grant is one admitted request's slot. Exactly one Release must follow.
type Grant struct {
	c         *Controller
	pressure  float64
	queuedFor time.Duration
	released  atomic.Bool
}

// Pressure is the queue-fill fraction [0,1] observed at admission.
func (g *Grant) Pressure() float64 { return g.pressure }

// QueuedFor is how long the request waited for its slot.
func (g *Grant) QueuedFor() time.Duration { return g.queuedFor }

// EffectiveEB relaxes a requested error bound under queue pressure, within
// the configured honesty floor: below DegradePressure the request keeps its
// bound; above it the bound moves linearly toward MaxErrorBound, reaching
// the floor only when the queue is full. It reports whether the bound was
// relaxed. Callers must surface the achieved bound of the answer they then
// compute — degradation relaxes the target, never the reporting.
func (g *Grant) EffectiveEB(requested float64) (float64, bool) {
	cfg := g.c.cfg
	if cfg.MaxErrorBound <= 0 || requested >= cfg.MaxErrorBound || requested <= 0 {
		return requested, false
	}
	if g.pressure < cfg.DegradePressure {
		return requested, false
	}
	frac := (g.pressure - cfg.DegradePressure) / (1 - cfg.DegradePressure)
	eff := requested + frac*(cfg.MaxErrorBound-requested)
	return eff, eff > requested
}

// Release frees the slot and records the request's serving latency and
// outcome. Extra calls are no-ops.
func (g *Grant) Release(elapsed time.Duration, outcome Outcome) {
	if !g.released.CompareAndSwap(false, true) {
		return
	}
	<-g.c.slots
	metInFlight.Set(float64(len(g.c.slots)))
	switch outcome {
	case OutcomeError:
		g.c.failed.Add(1)
		metCompleted.With("error").Inc()
	case OutcomeDegraded:
		g.c.degraded.Add(1)
		g.c.completed.Add(1)
		metDegraded.Inc()
		metCompleted.With("degraded").Inc()
	default:
		g.c.completed.Add(1)
		metCompleted.With("ok").Inc()
	}
	if outcome != OutcomeError {
		g.c.lat.record(float64(elapsed.Microseconds()) / 1000)
	}
}

// Stats is a point-in-time controller snapshot (healthz, /debug/admission).
type Stats struct {
	InFlight    int `json:"in_flight"`
	Queued      int `json:"queued"`
	MaxInFlight int `json:"max_in_flight"`
	MaxQueue    int `json:"max_queue"`

	Admitted       uint64 `json:"admitted"`
	Completed      uint64 `json:"completed"`
	Failed         uint64 `json:"failed"`
	Degraded       uint64 `json:"degraded"`
	ShedQueueFull  uint64 `json:"shed_queue_full"`
	ShedRateLimit  uint64 `json:"shed_rate_limited"`
	ShedDraining   uint64 `json:"shed_draining"`
	QueuedRequests uint64 `json:"queued_requests"`

	MeanQueueMS  float64 `json:"mean_queue_ms"`
	LatencyP50MS float64 `json:"latency_p50_ms"`
	LatencyP95MS float64 `json:"latency_p95_ms"`
	LatencyP99MS float64 `json:"latency_p99_ms"`

	SLOTargetP99MS float64 `json:"slo_target_p99_ms,omitempty"`
	SLOOK          bool    `json:"slo_ok"`
	Draining       bool    `json:"draining,omitempty"`
}

// Stats snapshots the controller.
func (c *Controller) Stats() Stats {
	p50, p95, p99 := c.lat.percentiles()
	st := Stats{
		InFlight:       len(c.slots),
		Queued:         int(c.queued.Load()),
		MaxInFlight:    c.cfg.MaxInFlight,
		MaxQueue:       c.cfg.MaxQueue,
		Admitted:       c.admitted.Load(),
		Completed:      c.completed.Load(),
		Failed:         c.failed.Load(),
		Degraded:       c.degraded.Load(),
		ShedQueueFull:  c.shedQueueFull.Load(),
		ShedRateLimit:  c.shedRateLimit.Load(),
		ShedDraining:   c.shedDraining.Load(),
		QueuedRequests: c.queuedRequests.Load(),
		LatencyP50MS:   p50,
		LatencyP95MS:   p95,
		LatencyP99MS:   p99,
		Draining:       c.draining.Load(),
	}
	if n := st.QueuedRequests; n > 0 {
		st.MeanQueueMS = float64(c.queueNanos.Load()) / float64(n) / 1e6
	}
	if t := c.cfg.SLOTargetP99; t > 0 {
		st.SLOTargetP99MS = float64(t.Microseconds()) / 1000
		st.SLOOK = p99 <= st.SLOTargetP99MS
	} else {
		st.SLOOK = true
	}
	return st
}
