// Package admission is the serving tier's load shield: per-client
// token-bucket rate limits, a bounded work queue with fast backpressure,
// and pressure-aware graceful degradation grants.
//
// The controller enforces three nested limits. A per-client token bucket
// rejects clients exceeding their configured request rate before they touch
// any shared resource. Admitted requests then contend for a fixed number of
// execution slots; when all slots are busy, up to MaxQueue requests wait
// (deadline-aware — a waiter whose context ends leaves the queue), and any
// request beyond that is shed immediately with ErrQueueFull so the server
// can answer 429 + Retry-After instead of queueing unboundedly. Memory and
// goroutine growth under overload are therefore bounded by
// MaxInFlight + MaxQueue, never by the arrival rate.
//
// Degradation is what makes shedding a last resort: the engine's guarantee
// loop can stop refining early and still return an honest (achieved eb, α)
// interval (core.Degradation), so under queue pressure a grant recommends a
// relaxed effective error bound — within the configured honesty floor —
// instead of making the client wait for the tight one. Grant.EffectiveEB
// implements that policy; the executed answer reports the bound it actually
// achieved, keeping the response statistically truthful.
//
// The controller also keeps the serving tier's SLO instrumentation: shed /
// degrade / completion counters and a sliding latency window with
// p50/p95/p99, snapshot via Stats for /v1/healthz and /debug/admission.
package admission
