package admission

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestQueueFullSheds: with one slot and a one-deep queue, a third concurrent
// request must shed immediately with ErrQueueFull — no unbounded waiting.
func TestQueueFullSheds(t *testing.T) {
	c := New(Config{MaxInFlight: 1, MaxQueue: 1})
	ctx := context.Background()

	g1, err := c.Admit(ctx, "a")
	if err != nil {
		t.Fatalf("first Admit: %v", err)
	}

	// Second request occupies the single queue position.
	entered := make(chan *Grant, 1)
	go func() {
		g, err := c.Admit(ctx, "a")
		if err != nil {
			t.Errorf("queued Admit: %v", err)
		}
		entered <- g
	}()
	waitFor(t, func() bool { return c.Stats().Queued == 1 })

	// Third request finds slot busy and queue full: fast shed.
	if _, err := c.Admit(ctx, "a"); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third Admit err = %v, want ErrQueueFull", err)
	}
	var shed *Shed
	if _, err := c.Admit(ctx, "a"); !errors.As(err, &shed) || shed.RetryAfter <= 0 {
		t.Fatalf("shed err = %v, want *Shed with positive RetryAfter", err)
	}

	g1.Release(time.Millisecond, OutcomeOK)
	g2 := <-entered
	g2.Release(time.Millisecond, OutcomeOK)

	st := c.Stats()
	if st.ShedQueueFull != 2 {
		t.Errorf("ShedQueueFull = %d, want 2", st.ShedQueueFull)
	}
	if st.Admitted != 2 || st.Completed != 2 || st.InFlight != 0 {
		t.Errorf("stats after release: %+v", st)
	}
}

// TestRateLimit: one request/second with burst 1 — the second immediate
// request sheds with ErrRateLimited and a refill-based Retry-After, while a
// different client's bucket is untouched.
func TestRateLimit(t *testing.T) {
	c := New(Config{MaxInFlight: 4, PerClientRate: 1, PerClientBurst: 1})
	ctx := context.Background()

	g, err := c.Admit(ctx, "alice")
	if err != nil {
		t.Fatalf("first Admit: %v", err)
	}
	g.Release(time.Millisecond, OutcomeOK)

	var shed *Shed
	_, err = c.Admit(ctx, "alice")
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("second Admit err = %v, want ErrRateLimited", err)
	}
	if !errors.As(err, &shed) || shed.RetryAfter <= 0 || shed.RetryAfter > time.Second {
		t.Fatalf("RetryAfter = %v, want in (0, 1s]", shed)
	}

	if g, err = c.Admit(ctx, "bob"); err != nil {
		t.Fatalf("other client Admit: %v", err)
	}
	g.Release(time.Millisecond, OutcomeOK)

	if st := c.Stats(); st.ShedRateLimit != 1 {
		t.Errorf("ShedRateLimit = %d, want 1", st.ShedRateLimit)
	}
}

// TestWaiterContextCancel: a queued waiter whose context ends leaves the
// queue with ctx's error, freeing the queue position.
func TestWaiterContextCancel(t *testing.T) {
	c := New(Config{MaxInFlight: 1, MaxQueue: 2})
	g, err := c.Admit(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Admit(ctx, "a")
		done <- err
	}()
	waitFor(t, func() bool { return c.Stats().Queued == 1 })
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter err = %v, want context.Canceled", err)
	}
	waitFor(t, func() bool { return c.Stats().Queued == 0 })
	g.Release(time.Millisecond, OutcomeOK)
}

// TestDrainShedsQueued: Drain sheds waiting requests with ErrDraining, lets
// the in-flight one finish, then refuses new arrivals.
func TestDrainShedsQueued(t *testing.T) {
	c := New(Config{MaxInFlight: 1, MaxQueue: 2})
	ctx := context.Background()
	g, err := c.Admit(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	waiterErr := make(chan error, 1)
	go func() {
		_, err := c.Admit(ctx, "a")
		waiterErr <- err
	}()
	waitFor(t, func() bool { return c.Stats().Queued == 1 })

	drainDone := make(chan error, 1)
	go func() {
		dctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		defer cancel()
		drainDone <- c.Drain(dctx)
	}()

	if err := <-waiterErr; !errors.Is(err, ErrDraining) {
		t.Fatalf("queued waiter err = %v, want ErrDraining", err)
	}
	// Drain must not complete while the slot is held.
	select {
	case err := <-drainDone:
		t.Fatalf("Drain returned %v with a request in flight", err)
	case <-time.After(20 * time.Millisecond):
	}
	g.Release(time.Millisecond, OutcomeOK)
	if err := <-drainDone; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if _, err := c.Admit(ctx, "a"); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain Admit err = %v, want ErrDraining", err)
	}
	st := c.Stats()
	if !st.Draining || st.ShedDraining != 2 {
		t.Errorf("post-drain stats: %+v", st)
	}
}

// TestEffectiveEB checks the degradation policy curve: identity below the
// pressure threshold, monotone relaxation above it, capped at the honesty
// floor, and inert when no floor is configured.
func TestEffectiveEB(t *testing.T) {
	c := New(Config{MaxInFlight: 1, DegradePressure: 0.5, MaxErrorBound: 0.5})
	grant := func(p float64) *Grant { return &Grant{c: c, pressure: p} }

	if eb, rel := grant(0.2).EffectiveEB(0.05); eb != 0.05 || rel {
		t.Errorf("below threshold: (%g, %v)", eb, rel)
	}
	mid, rel := grant(0.75).EffectiveEB(0.05)
	if !rel || mid <= 0.05 || mid >= 0.5 {
		t.Errorf("mid pressure: (%g, %v), want strictly between 0.05 and 0.5", mid, rel)
	}
	hi, _ := grant(0.9).EffectiveEB(0.05)
	if hi <= mid {
		t.Errorf("relaxation not monotone: p=0.9 gives %g <= p=0.75's %g", hi, mid)
	}
	if full, _ := grant(1).EffectiveEB(0.05); full != 0.5 {
		t.Errorf("full pressure: %g, want the 0.5 floor", full)
	}
	// Requested bound already looser than the floor: untouched.
	if eb, rel := grant(1).EffectiveEB(0.8); eb != 0.8 || rel {
		t.Errorf("looser-than-floor request: (%g, %v)", eb, rel)
	}
	// No floor configured: degradation disabled.
	c2 := New(Config{MaxInFlight: 1})
	if eb, rel := (&Grant{c: c2, pressure: 1}).EffectiveEB(0.05); eb != 0.05 || rel {
		t.Errorf("no floor: (%g, %v)", eb, rel)
	}
}

// TestLatencyPercentiles feeds a known distribution through Release and
// checks the window's order statistics.
func TestLatencyPercentiles(t *testing.T) {
	c := New(Config{MaxInFlight: 4, LatencyWindow: 200, SLOTargetP99: 150 * time.Millisecond})
	ctx := context.Background()
	for i := 1; i <= 100; i++ {
		g, err := c.Admit(ctx, "a")
		if err != nil {
			t.Fatal(err)
		}
		g.Release(time.Duration(i)*time.Millisecond, OutcomeOK)
	}
	st := c.Stats()
	if st.LatencyP50MS < 45 || st.LatencyP50MS > 55 {
		t.Errorf("p50 = %g, want ≈50", st.LatencyP50MS)
	}
	if st.LatencyP95MS < 90 || st.LatencyP95MS > 99 {
		t.Errorf("p95 = %g, want ≈95", st.LatencyP95MS)
	}
	if st.LatencyP99MS < 95 || st.LatencyP99MS > 100 {
		t.Errorf("p99 = %g, want ≈99", st.LatencyP99MS)
	}
	if !st.SLOOK {
		t.Errorf("SLOOK = false with p99 %gms vs 150ms target", st.LatencyP99MS)
	}
}

// TestConcurrentChurn hammers the controller from many goroutines to give
// the race detector surface area; afterwards the books must balance.
func TestConcurrentChurn(t *testing.T) {
	c := New(Config{MaxInFlight: 4, MaxQueue: 8})
	var wg sync.WaitGroup
	var shed, ok, canceled int64
	var mu sync.Mutex
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
			defer cancel()
			g, err := c.Admit(ctx, "a")
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				mu.Unlock()
				time.Sleep(time.Millisecond)
				g.Release(time.Millisecond, OutcomeOK)
				mu.Lock()
				ok++
			case errors.Is(err, ErrQueueFull):
				shed++
			case errors.Is(err, context.DeadlineExceeded):
				canceled++
			default:
				t.Errorf("unexpected err: %v", err)
			}
		}()
	}
	wg.Wait()
	st := c.Stats()
	if st.InFlight != 0 || st.Queued != 0 {
		t.Fatalf("leaked slots/queue: %+v", st)
	}
	if uint64(ok) != st.Completed || uint64(shed) != st.ShedQueueFull {
		t.Errorf("counter mismatch: ok=%d shed=%d vs %+v", ok, shed, st)
	}
	if ok+shed+canceled != 64 {
		t.Errorf("accounting: ok=%d shed=%d canceled=%d", ok, shed, canceled)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}
