package admission

import (
	"sort"
	"sync"
	"time"
)

// bucketSet holds one token bucket per client identity. Buckets are created
// lazily on first use; the map is bounded in practice by the number of
// distinct client IDs, which the server derives from a header or remote
// address.
type bucketSet struct {
	rate  float64 // tokens per second
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newBucketSet(rate float64, burst int) *bucketSet {
	return &bucketSet{rate: rate, burst: float64(burst), buckets: make(map[string]*bucket)}
}

// take spends one token from the client's bucket. On refusal it returns the
// time until a token refills — the honest Retry-After hint.
func (s *bucketSet) take(client string, now time.Time) (ok bool, wait time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.buckets[client]
	if b == nil {
		b = &bucket{tokens: s.burst, last: now}
		s.buckets[client] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * s.rate
		if b.tokens > s.burst {
			b.tokens = s.burst
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	deficit := 1 - b.tokens
	return false, time.Duration(deficit / s.rate * float64(time.Second))
}

// latencyWindow is a fixed-size ring of serving latencies (milliseconds)
// with percentile snapshots. Writes are O(1) under a mutex; percentiles
// copy and sort the window, which is fine at the stats-polling cadence.
type latencyWindow struct {
	mu   sync.Mutex
	vals []float64
	next int
	full bool
}

func newLatencyWindow(size int) *latencyWindow {
	return &latencyWindow{vals: make([]float64, size)}
}

func (w *latencyWindow) record(ms float64) {
	w.mu.Lock()
	w.vals[w.next] = ms
	w.next++
	if w.next == len(w.vals) {
		w.next = 0
		w.full = true
	}
	w.mu.Unlock()
}

func (w *latencyWindow) percentiles() (p50, p95, p99 float64) {
	w.mu.Lock()
	n := w.next
	if w.full {
		n = len(w.vals)
	}
	snap := make([]float64, n)
	copy(snap, w.vals[:n])
	w.mu.Unlock()
	if n == 0 {
		return 0, 0, 0
	}
	sort.Float64s(snap)
	at := func(q float64) float64 {
		i := int(q * float64(n-1))
		return snap[i]
	}
	return at(0.50), at(0.95), at(0.99)
}
