package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"kgaq/internal/faultinject"
)

// openReplayed opens a log over dir and runs the mandatory replay,
// collecting the records.
func openReplayed(t *testing.T, dir string, opt Options) (*Log, map[uint64][]byte, ReplayStats) {
	t.Helper()
	l, err := Open(dir, opt)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	got := map[uint64][]byte{}
	st, err := l.Replay(0, func(epoch uint64, payload []byte) error {
		got[epoch] = append([]byte(nil), payload...)
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return l, got, st
}

// fill appends epochs [1, n] with distinguishable payloads.
func fill(t *testing.T, l *Log, n int) {
	t.Helper()
	for e := 1; e <= n; e++ {
		if err := l.Append(uint64(e), payloadFor(e)); err != nil {
			t.Fatalf("Append(%d): %v", e, err)
		}
	}
}

func payloadFor(e int) []byte {
	return []byte(fmt.Sprintf(`[{"op":"set_attr","entity":"E%d","attr":"a","value":%d}]`, e, e))
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := openReplayed(t, dir, Options{})
	fill(t, l, 25)
	if got := l.LastEpoch(); got != 25 {
		t.Fatalf("LastEpoch = %d, want 25", got)
	}
	if got := l.SyncedEpoch(); got != 25 {
		t.Fatalf("SyncedEpoch = %d under SyncAlways, want 25", got)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, got, st := openReplayed(t, dir, Options{})
	defer l2.Close()
	if st.Records != 25 || st.Replayed != 25 || st.TornBytes != 0 {
		t.Fatalf("stats = %+v, want 25 clean records", st)
	}
	for e := 1; e <= 25; e++ {
		if !bytes.Equal(got[uint64(e)], payloadFor(e)) {
			t.Fatalf("epoch %d payload mismatch", e)
		}
	}
	// Replay positions the writer: appending must extend the chain.
	if err := l2.Append(26, payloadFor(26)); err != nil {
		t.Fatalf("Append after replay: %v", err)
	}
	if err := l2.Append(28, payloadFor(28)); err == nil {
		t.Fatal("Append accepted an epoch gap")
	}
}

func TestReplayAfterSkipsCoveredEpochs(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := openReplayed(t, dir, Options{})
	fill(t, l, 10)
	l.Close()

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	var seen []uint64
	st, err := l2.Replay(7, func(epoch uint64, _ []byte) error {
		seen = append(seen, epoch)
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if st.Records != 10 || st.Replayed != 3 {
		t.Fatalf("stats = %+v, want 10 records / 3 replayed", st)
	}
	if len(seen) != 3 || seen[0] != 8 || seen[2] != 10 {
		t.Fatalf("replayed epochs %v, want [8 9 10]", seen)
	}
}

func TestRotationAndTrim(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every record larger than 64 bytes forces a rotation.
	l, _, _ := openReplayed(t, dir, Options{SegmentBytes: 64})
	fill(t, l, 9)
	if segs := l.Segments(); segs < 3 {
		t.Fatalf("only %d segments after 9 oversized appends", segs)
	}
	before := l.Segments()

	// Trim through epoch 5: every segment fully ≤ 5 disappears, and the
	// records > 5 all survive a replay.
	if err := l.TrimThrough(5); err != nil {
		t.Fatalf("TrimThrough: %v", err)
	}
	if l.Segments() >= before {
		t.Fatalf("trim removed nothing (still %d segments)", l.Segments())
	}
	l.Close()

	l2, got, _ := openReplayed(t, dir, Options{SegmentBytes: 64})
	defer l2.Close()
	for e := 6; e <= 9; e++ {
		if !bytes.Equal(got[uint64(e)], payloadFor(e)) {
			t.Fatalf("epoch %d lost by trim", e)
		}
	}
	// The active segment always survives a trim, even one covering it.
	if err := l2.TrimThrough(100); err != nil {
		t.Fatalf("TrimThrough(100): %v", err)
	}
	if l2.Segments() < 1 {
		t.Fatal("trim deleted the active segment")
	}
}

func TestSyncPolicies(t *testing.T) {
	t.Run("none", func(t *testing.T) {
		l, _, _ := openReplayed(t, t.TempDir(), Options{Sync: SyncNone})
		defer l.Close()
		fill(t, l, 3)
		if got := l.SyncedEpoch(); got != 0 {
			t.Fatalf("SyncedEpoch = %d under SyncNone before any explicit sync", got)
		}
		if err := l.Sync(); err != nil {
			t.Fatal(err)
		}
		if got := l.SyncedEpoch(); got != 3 {
			t.Fatalf("SyncedEpoch = %d after manual Sync, want 3", got)
		}
	})
	t.Run("interval", func(t *testing.T) {
		l, _, _ := openReplayed(t, t.TempDir(), Options{Sync: SyncInterval, SyncEvery: 5 * time.Millisecond})
		defer l.Close()
		fill(t, l, 3)
		deadline := time.Now().Add(2 * time.Second)
		for l.SyncedEpoch() != 3 {
			if time.Now().After(deadline) {
				t.Fatalf("background syncer never reached epoch 3 (at %d)", l.SyncedEpoch())
			}
			time.Sleep(time.Millisecond)
		}
	})
}

func TestFsyncFailureFailsAppend(t *testing.T) {
	l, _, _ := openReplayed(t, t.TempDir(), Options{})
	defer l.Close()
	fill(t, l, 2)
	defer faultinject.Activate(1, faultinject.Fault{Point: "wal.sync", Count: 1})()
	err := l.Append(3, payloadFor(3))
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("Append under failing fsync returned %v", err)
	}
	// A failed fsync is unrecoverable — the kernel may have dropped the
	// dirty pages — so the log poisons itself rather than pretend a later
	// sync could cover epoch 3.
	if got := l.SyncedEpoch(); got != 2 {
		t.Fatalf("SyncedEpoch = %d after failed sync, want 2", got)
	}
	if err := l.Append(4, payloadFor(4)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append on a poisoned log = %v, want ErrClosed", err)
	}
}

func TestAppendFaultPoint(t *testing.T) {
	l, _, _ := openReplayed(t, t.TempDir(), Options{})
	defer l.Close()
	defer faultinject.Activate(1, faultinject.Fault{Point: "wal.append", Count: 1})()
	if err := l.Append(1, payloadFor(1)); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("Append = %v, want injected error", err)
	}
	// The injected failure happens before any bytes land: epoch 1 is free.
	if err := l.Append(1, payloadFor(1)); err != nil {
		t.Fatalf("retry after injected append failure: %v", err)
	}
}

// segFiles returns the segment paths in epoch order.
func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	m, err := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestTornTailEveryOffset is the exhaustive tear sweep: a log truncated at
// every possible byte offset must recover to the longest valid record
// prefix, never report corruption, and stay appendable.
func TestTornTailEveryOffset(t *testing.T) {
	master := t.TempDir()
	l, _, _ := openReplayed(t, master, Options{})
	fill(t, l, 5)
	l.Close()
	files := segFiles(t, master)
	if len(files) != 1 {
		t.Fatalf("expected one segment, got %v", files)
	}
	full, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	name := filepath.Base(files[0])

	// Where each record's frame starts, to compute the expected prefix.
	starts := []int{len(segMagic)}
	for e := 1; e <= 5; e++ {
		starts = append(starts, starts[len(starts)-1]+recHeader+len(payloadFor(e)))
	}

	for cut := 0; cut < len(full); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, name), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		wantEpochs := 0
		for i := 1; i < len(starts); i++ {
			if cut >= starts[i] {
				wantEpochs = i
			}
		}
		l2, got, st := openReplayed(t, dir, Options{})
		if len(got) != wantEpochs {
			t.Fatalf("cut at %d: recovered %d epochs, want %d", cut, len(got), wantEpochs)
		}
		// A cut inside the magic drops the whole (sub-magic) file; otherwise
		// the tail past the last complete record is the torn span.
		wantLost := int64(cut - starts[wantEpochs])
		if cut < len(segMagic) {
			wantLost = int64(cut)
		}
		if st.TornBytes != wantLost {
			t.Fatalf("cut at %d: TornBytes = %d, want %d", cut, st.TornBytes, wantLost)
		}
		// The log must accept the next epoch in the chain after recovery.
		if err := l2.Append(uint64(wantEpochs)+1, payloadFor(wantEpochs+1)); err != nil {
			t.Fatalf("cut at %d: append after recovery: %v", cut, err)
		}
		l2.Close()
	}
}

// TestMidLogCorruptionIsTyped flips one byte in every non-final record and
// expects the typed corruption error, never a silent skip.
func TestMidLogCorruptionIsTyped(t *testing.T) {
	master := t.TempDir()
	l, _, _ := openReplayed(t, master, Options{})
	fill(t, l, 5)
	l.Close()
	file := segFiles(t, master)[0]
	full, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	lastStart := len(full) - recHeader - len(payloadFor(5))

	for off := len(segMagic); off < lastStart; off++ {
		dir := t.TempDir()
		mut := append([]byte(nil), full...)
		mut[off] ^= 0x40
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(file)), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		l2, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		_, rerr := l2.Replay(0, nil)
		if !errors.Is(rerr, ErrCorruptRecord) {
			t.Fatalf("flip at mid-log offset %d: Replay = %v, want ErrCorruptRecord", off, rerr)
		}
		l2.Close()
	}

	// The same flip inside the final record is a torn tail: recovery, with
	// every earlier record intact.
	dir := t.TempDir()
	mut := append([]byte(nil), full...)
	mut[lastStart+recHeader] ^= 0x40
	if err := os.WriteFile(filepath.Join(dir, filepath.Base(file)), mut, 0o644); err != nil {
		t.Fatal(err)
	}
	l3, got, st := openReplayed(t, dir, Options{})
	defer l3.Close()
	if len(got) != 4 || st.TornBytes == 0 {
		t.Fatalf("final-record flip: recovered %d epochs (torn %d bytes), want 4 + torn tail", len(got), st.TornBytes)
	}
}

// TestTornSealedSegmentIsCorruption: a truncated non-final segment cannot be
// a torn tail — records provably follow in later segments.
func TestTornSealedSegmentIsCorruption(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := openReplayed(t, dir, Options{SegmentBytes: 64})
	fill(t, l, 6)
	l.Close()
	files := segFiles(t, dir)
	if len(files) < 2 {
		t.Fatalf("need ≥ 2 segments, got %d", len(files))
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(files[0], data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if _, rerr := l2.Replay(0, nil); !errors.Is(rerr, ErrCorruptRecord) {
		t.Fatalf("Replay over torn sealed segment = %v, want ErrCorruptRecord", rerr)
	}
}

func TestEpochGapIsCorruption(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := openReplayed(t, dir, Options{SegmentBytes: 64})
	fill(t, l, 6)
	l.Close()
	files := segFiles(t, dir)
	if len(files) < 3 {
		t.Fatalf("need ≥ 3 segments, got %d", len(files))
	}
	// Deleting a middle segment leaves a valid-CRC epoch discontinuity.
	if err := os.Remove(files[1]); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if _, rerr := l2.Replay(0, nil); !errors.Is(rerr, ErrCorruptRecord) {
		t.Fatalf("Replay over missing segment = %v, want ErrCorruptRecord", rerr)
	}
}

func TestClosedLog(t *testing.T) {
	l, _, _ := openReplayed(t, t.TempDir(), Options{})
	fill(t, l, 1)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
	if err := l.Append(2, payloadFor(2)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append on closed log = %v, want ErrClosed", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Sync on closed log = %v, want ErrClosed", err)
	}
}
