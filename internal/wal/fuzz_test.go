package wal

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// FuzzReplay feeds arbitrary bytes to the reader as a lone segment file.
// The oracle: Replay never panics, and either succeeds — in which case the
// delivered records must chain contiguously — or fails with a typed error
// (ErrCorruptRecord for content damage). Seeds cover a valid log, a torn
// tail, and flipped bytes.
func FuzzReplay(f *testing.F) {
	valid := func(n int) []byte {
		buf := []byte(segMagic)
		for e := 1; e <= n; e++ {
			payload := payloadFor(e)
			var hdr [recHeader]byte
			binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
			binary.LittleEndian.PutUint64(hdr[4:12], uint64(e))
			binary.LittleEndian.PutUint32(hdr[12:16], crc32.Checksum(hdr[0:12], castagnoli))
			binary.LittleEndian.PutUint32(hdr[16:20], crc32.Checksum(payload, castagnoli))
			buf = append(buf, hdr[:]...)
			buf = append(buf, payload...)
		}
		return buf
	}
	f.Add([]byte{})
	f.Add(valid(3))
	f.Add(valid(3)[:len(valid(3))-5]) // torn tail
	flipped := valid(3)
	flipped[20] ^= 0xff
	f.Add(flipped)
	f.Add([]byte(segMagic))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		// Name the segment for epoch 1 — the common case; mismatches are
		// themselves a corruption path worth exercising.
		if err := os.WriteFile(filepath.Join(dir, "wal-0000000000000001.log"), data, 0o644); err != nil {
			t.Skip()
		}
		l, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		defer l.Close()
		prev := uint64(0)
		st, err := l.Replay(0, func(epoch uint64, payload []byte) error {
			if prev != 0 && epoch != prev+1 {
				t.Fatalf("replay delivered non-contiguous epochs %d after %d", epoch, prev)
			}
			prev = epoch
			return nil
		})
		if err != nil {
			if !errors.Is(err, ErrCorruptRecord) {
				t.Fatalf("Replay failed with untyped error: %v", err)
			}
			return
		}
		// A successful replay leaves an appendable log.
		next := prev + 1
		if next == 0 {
			next = 1
		}
		if aerr := l.Append(next, []byte("x")); aerr != nil {
			t.Fatalf("Append(%d) after clean replay (stats %+v): %v", next, st, aerr)
		}
	})
}
