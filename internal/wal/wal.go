package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"kgaq/internal/faultinject"
)

// Segment framing. Every segment file starts with an 8-byte magic; records
// follow back to back:
//
//	┌──────────┬───────────┬──────────┬──────────┬────────────────┐
//	│ len  u32 │ epoch u64 │ hcrc u32 │ pcrc u32 │ payload (len)  │
//	└──────────┴───────────┴──────────┴──────────┴────────────────┘
//
// hcrc is CRC32-C over the len and epoch fields, pcrc over the payload.
// The split is what lets the reader tell a torn tail from mid-log damage:
// a crash tears a record into a *prefix* (the header incomplete, or the
// header whole and the payload short), while a bit flip leaves the record's
// full extent in place with a checksum that cannot pass. A valid hcrc also
// makes the length field trustworthy on its own, so a record that claims to
// overrun its segment is a torn payload, not a navigation loss. Epochs are
// strictly contiguous across the whole log (each committed batch advances
// the live graph exactly one epoch), a structural invariant the reader
// checks record by record.
const (
	segMagic   = "KGAQWAL1"
	recHeader  = 20       // len(4) + epoch(8) + hcrc(4) + pcrc(4)
	maxRecord  = 64 << 20 // sanity cap; a mutate batch is bounded far below
	segPrefix  = "wal-"
	segSuffix  = ".log"
	segPattern = segPrefix + "%016x" + segSuffix
)

// castagnoli is the CRC32-C table (the polynomial with hardware support on
// both amd64 and arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorruptRecord reports mid-log corruption: a CRC or framing failure
// with more data provably behind it (or in a non-final segment). A damaged
// *final* record is not this error — it is a torn tail, silently truncated
// by Replay as ordinary crash recovery. Match with errors.Is.
var ErrCorruptRecord = errors.New("wal: corrupt record")

// ErrClosed reports use of a closed log.
var ErrClosed = errors.New("wal: log closed")

// SyncPolicy selects when appended records become durable.
type SyncPolicy int

const (
	// SyncAlways fsyncs before every Append returns: an acknowledged batch
	// survives power loss. The strongest and slowest policy; the default.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a background ticker (Options.SyncEvery):
	// Append returns once the record is in the OS page cache, so a process
	// crash loses nothing and a machine crash loses at most one interval.
	SyncInterval
	// SyncNone never fsyncs explicitly (rotation and Close still do): a
	// process crash loses nothing, a machine crash loses what the OS had
	// not yet written back.
	SyncNone
)

// ParseSyncPolicy maps the flag spelling onto a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(s) {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (always, interval, none)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// Options tunes a log.
type Options struct {
	// Sync selects the durability policy (default SyncAlways).
	Sync SyncPolicy
	// SyncEvery is the SyncInterval ticker period (default 100ms).
	SyncEvery time.Duration
	// SegmentBytes rotates the active segment once it grows past this size
	// (default 64 MiB).
	SegmentBytes int64
	// OnError observes background-sync failures (default: ignored).
	OnError func(error)
}

func (o Options) withDefaults() Options {
	if o.SyncEvery <= 0 {
		o.SyncEvery = 100 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	return o
}

// segment is one on-disk log file; first is the epoch of its first record,
// encoded in the file name so trimming never has to read content.
type segment struct {
	path  string
	first uint64
}

// Log is an append-only, CRC-framed, segment-rotated mutation log. One
// writer at a time: every method is safe for concurrent use, but the
// append order defines the epoch order, so callers serialise
// apply-then-append externally (live.Durable does).
type Log struct {
	dir string
	opt Options

	mu       sync.Mutex
	segs     []segment
	f        *os.File // active (last) segment, nil before the first append
	segSize  int64
	last     uint64 // last appended epoch (0 = none)
	synced   uint64 // last epoch known durable
	appended uint64 // records appended by this process
	replayed bool
	closed   bool

	stopSync chan struct{}
	syncDone chan struct{}
}

// Open scans dir (created if missing) for existing segments and prepares a
// log over them. Contents are not validated here: call Replay — once,
// before the first Append — to read existing records back, truncate any
// torn tail and position the writer.
func Open(dir string, opt Options) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{dir: dir, opt: opt.withDefaults()}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		var first uint64
		if _, err := fmt.Sscanf(name, segPattern, &first); err != nil {
			continue // foreign file; leave it alone
		}
		l.segs = append(l.segs, segment{path: filepath.Join(dir, name), first: first})
	}
	sort.Slice(l.segs, func(i, j int) bool { return l.segs[i].first < l.segs[j].first })
	if l.opt.Sync == SyncInterval {
		l.stopSync = make(chan struct{})
		l.syncDone = make(chan struct{})
		go l.syncLoop(l.stopSync)
	}
	return l, nil
}

// syncLoop is the SyncInterval background syncer. The stop channel comes in
// as a parameter because Close and Abort nil the field under the mutex.
func (l *Log) syncLoop(stop <-chan struct{}) {
	defer close(l.syncDone)
	tick := time.NewTicker(l.opt.SyncEvery)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			l.mu.Lock()
			err := l.syncLocked()
			l.mu.Unlock()
			if err != nil && l.opt.OnError != nil {
				l.opt.OnError(err)
			}
		}
	}
}

// Append writes one record and makes it durable per the sync policy before
// returning (for SyncAlways). epoch must extend the log contiguously: the
// record order IS the epoch order.
func (l *Log) Append(epoch uint64, payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch {
	case l.closed:
		return ErrClosed
	case !l.replayed:
		return errors.New("wal: Append before Replay")
	case len(payload) > maxRecord:
		return fmt.Errorf("wal: record of %d bytes exceeds the %d-byte cap", len(payload), maxRecord)
	case l.last != 0 && epoch != l.last+1:
		return fmt.Errorf("wal: append epoch %d does not extend last epoch %d", epoch, l.last)
	case epoch == 0:
		return errors.New("wal: epoch 0 is the boot snapshot, not a loggable batch")
	}
	if err := faultinject.Fire("wal.append"); err != nil {
		return fmt.Errorf("wal: append epoch %d: %w", epoch, err)
	}
	begin := time.Now()
	defer func() { metAppendSeconds.Observe(time.Since(begin).Seconds()) }()
	if l.f != nil && l.segSize >= l.opt.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	if l.f == nil {
		if err := l.newSegmentLocked(epoch); err != nil {
			return err
		}
	}
	buf := make([]byte, recHeader+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(buf[4:12], epoch)
	binary.LittleEndian.PutUint32(buf[12:16], crc32.Checksum(buf[0:12], castagnoli))
	binary.LittleEndian.PutUint32(buf[16:20], crc32.Checksum(payload, castagnoli))
	copy(buf[recHeader:], payload)
	n, err := l.f.Write(buf)
	l.segSize += int64(n)
	if err != nil {
		return fmt.Errorf("wal: append epoch %d: %w", epoch, err)
	}
	l.last = epoch
	l.appended++
	metAppends.Inc()
	if l.opt.Sync == SyncAlways {
		if err := l.syncLocked(); err != nil {
			// A failed fsync leaves durability unknowable — the kernel may
			// already have dropped the dirty pages — so no later fsync can
			// retroactively honour this record's guarantee. Poison the log:
			// every further append fails and the process must recover from
			// what is provably on disk.
			l.closed = true
			if l.f != nil {
				l.f.Close()
				l.f = nil
			}
			return err
		}
	}
	return nil
}

// newSegmentLocked creates the segment file that will hold epoch as its
// first record.
func (l *Log) newSegmentLocked(epoch uint64) error {
	path := filepath.Join(l.dir, fmt.Sprintf(segPattern, epoch))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := f.WriteString(segMagic); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	l.f = f
	l.segSize = int64(len(segMagic))
	l.segs = append(l.segs, segment{path: path, first: epoch})
	return nil
}

// rotateLocked seals the active segment (fsync + close) so a fresh one is
// created on the next append. Everything in a sealed segment is durable.
func (l *Log) rotateLocked() error {
	if l.f == nil {
		return nil
	}
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: rotate: %w", err)
	}
	l.f = nil
	l.segSize = 0
	metRotations.Inc()
	return nil
}

// syncLocked fsyncs the active segment and advances the synced epoch.
func (l *Log) syncLocked() error {
	if l.f == nil || l.synced == l.last {
		return nil
	}
	if err := faultinject.Fire("wal.sync"); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	begin := time.Now()
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	metFsyncSeconds.Observe(time.Since(begin).Seconds())
	l.synced = l.last
	return nil
}

// Sync forces an fsync of the active segment regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked()
}

// TrimThrough deletes whole segments whose records all have epochs ≤ epoch
// — the checkpointer calls it after a snapshot lands. The active (last)
// segment always survives, so the epoch chain the next Replay sees stays
// anchored. Trimming is best-effort: an undeletable file is reported but
// the log stays usable.
func (l *Log) TrimThrough(epoch uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	var firstErr error
	kept := l.segs[:0]
	for i, s := range l.segs {
		// A segment's records span [s.first, next.first-1]; it is disposable
		// iff a successor exists and that whole span is ≤ epoch.
		if i+1 < len(l.segs) && l.segs[i+1].first <= epoch+1 {
			if err := os.Remove(s.path); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("wal: trim: %w", err)
				kept = append(kept, s)
			}
			continue
		}
		kept = append(kept, s)
	}
	l.segs = kept
	return firstErr
}

// Close syncs and closes the log. Further use returns ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	err := l.syncLocked()
	if l.f != nil {
		if cerr := l.f.Close(); err == nil && cerr != nil {
			err = fmt.Errorf("wal: close: %w", cerr)
		}
		l.f = nil
	}
	stop, done := l.stopSync, l.syncDone
	l.stopSync = nil
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	return err
}

// Abort closes the log's file handles without the final sync Close performs
// — the crash this package exists to survive, exposed so chaos tests can
// simulate a kill in-process and recover from whatever reached the disk.
func (l *Log) Abort() {
	l.mu.Lock()
	l.closed = true
	if l.f != nil {
		l.f.Close()
		l.f = nil
	}
	stop, done := l.stopSync, l.syncDone
	l.stopSync = nil
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// LastEpoch returns the epoch of the last appended (or replayed) record.
func (l *Log) LastEpoch() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.last
}

// SyncedEpoch returns the last epoch known durable on disk.
func (l *Log) SyncedEpoch() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.synced
}

// Segments returns the number of live segment files.
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segs)
}

// Appended returns the records appended by this process (replay excluded).
func (l *Log) Appended() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appended
}
