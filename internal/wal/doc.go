// Package wal is the append-only mutation log behind the live graph's
// durability: every committed mutation batch becomes one CRC32-C-framed,
// length-prefixed record carrying the epoch the batch created, so a crashed
// process replays the log and lands on the exact epoch it had acknowledged.
//
// The log is a directory of segment files (wal-<first-epoch>.log), rotated
// at a size threshold and trimmed whole once a checkpoint covers them.
// Three sync policies trade durability for append latency: "always" fsyncs
// before acknowledging, "interval" fsyncs on a background ticker, "none"
// leaves write-back to the OS (a process crash still loses nothing — only
// records the machine itself lost are gone).
//
// Recovery draws a hard line between two kinds of damage. A partial or
// checksum-failing final record is a torn tail — the expected artifact of
// crashing mid-write — and Replay truncates it silently. Any damage with
// records provably behind it is real corruption, reported as a typed
// ErrCorruptRecord so the caller falls back to a checkpoint instead of
// silently skipping committed batches.
//
// The instrumented faultinject points "wal.append" and "wal.sync" let the
// chaos suite fail writes and fsyncs deterministically.
package wal
