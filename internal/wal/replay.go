package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
)

// ReplayStats summarises one boot-time replay.
type ReplayStats struct {
	// Records is the number of valid records read (including skipped ones).
	Records int `json:"records"`
	// Replayed counts the records delivered to the callback (epoch > after).
	Replayed int `json:"replayed"`
	// TornBytes is the size of the truncated torn tail (0 = clean shutdown).
	TornBytes int64 `json:"torn_bytes,omitempty"`
	// Segments is the number of segment files read.
	Segments int `json:"segments"`
}

// Replay reads every record back in epoch order, delivering those with
// epoch > after to fn, and positions the log for appending. It must run
// once, before the first Append.
//
// A partial or damaged *final* record is crash recovery, not corruption:
// the torn tail is truncated (stats.TornBytes) and replay succeeds with
// everything before it. Damage anywhere else — a CRC or framing failure
// with records provably behind it, or an epoch discontinuity — returns
// ErrCorruptRecord: the log cannot prove the surviving suffix consistent,
// so recovery must fall back to a checkpoint instead of silently skipping
// committed batches. An error from fn aborts the replay with that error.
func (l *Log) Replay(after uint64, fn func(epoch uint64, payload []byte) error) (ReplayStats, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var st ReplayStats
	if l.closed {
		return st, ErrClosed
	}
	if l.replayed {
		return st, fmt.Errorf("wal: Replay called twice")
	}
	if fn == nil {
		fn = func(uint64, []byte) error { return nil }
	}

	prev := uint64(0) // last valid epoch seen
	for i := 0; i < len(l.segs); i++ {
		seg := l.segs[i]
		lastSeg := i == len(l.segs)-1
		data, err := os.ReadFile(seg.path)
		if err != nil {
			return st, fmt.Errorf("wal: %w", err)
		}
		st.Segments++

		if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
			if lastSeg && bytes.HasPrefix([]byte(segMagic), data) {
				// The segment file itself was torn mid-creation: nothing in
				// it ever held a record, so dropping it is recovery.
				st.TornBytes += int64(len(data))
				if err := l.dropSegmentLocked(i); err != nil {
					return st, err
				}
				break
			}
			return st, fmt.Errorf("%w: %s: bad segment magic", ErrCorruptRecord, seg.path)
		}

		off := len(segMagic)
		segRecords := 0
		torn := -1 // offset to truncate at, -1 = none
	records:
		for off < len(data) {
			rem := len(data) - off
			corrupt := func(detail string) error {
				return fmt.Errorf("%w: %s at offset %d: %s", ErrCorruptRecord, seg.path, off, detail)
			}
			if rem < recHeader {
				if !lastSeg {
					return st, corrupt("truncated record header in a sealed segment")
				}
				torn = off
				break records
			}
			length := int(binary.LittleEndian.Uint32(data[off : off+4]))
			epoch := binary.LittleEndian.Uint64(data[off+4 : off+12])
			hsum := binary.LittleEndian.Uint32(data[off+12 : off+16])
			psum := binary.LittleEndian.Uint32(data[off+16 : off+20])
			if crc32.Checksum(data[off:off+12], castagnoli) != hsum {
				// A torn write leaves a record *prefix*; a full 20-byte
				// header with a bad checksum means the bytes were damaged in
				// place — unless it really is the final bytes of the log,
				// where garbage past a tear cannot be ruled out.
				if !lastSeg || rem > recHeader {
					return st, corrupt("header checksum mismatch")
				}
				torn = off
				break records
			}
			if length > maxRecord || rem-recHeader < length {
				// The header checksum passed, so the length is trustworthy:
				// the payload genuinely overruns what is on disk. In the
				// final segment that is a torn payload; a sealed segment
				// lost bytes it once held.
				if !lastSeg {
					return st, corrupt(fmt.Sprintf("record of %d bytes overruns a sealed segment", length))
				}
				torn = off
				break records
			}
			payload := data[off+recHeader : off+recHeader+length]
			if crc32.Checksum(payload, castagnoli) != psum {
				// A payload checksum failure on the very last record of the
				// log is a torn write; one with records behind it is
				// corruption.
				if !lastSeg || rem-recHeader-length > 0 {
					return st, corrupt(fmt.Sprintf("payload checksum mismatch at epoch %d", epoch))
				}
				torn = off
				break records
			}
			// The CRC covers the epoch, so a mismatch here is structural
			// damage (lost or reordered records), never a bit flip.
			if segRecords == 0 && epoch != seg.first {
				return st, corrupt(fmt.Sprintf("first record epoch %d does not match segment name epoch %d", epoch, seg.first))
			}
			if prev != 0 && epoch != prev+1 {
				return st, corrupt(fmt.Sprintf("epoch %d does not extend epoch %d", epoch, prev))
			}
			st.Records++
			segRecords++
			if epoch > after {
				if err := fn(epoch, payload); err != nil {
					return st, err
				}
				st.Replayed++
			}
			prev = epoch
			off += recHeader + length
		}

		if torn >= 0 {
			st.TornBytes += int64(len(data) - torn)
			if segRecords == 0 {
				// Only the magic survived: drop the whole file so the next
				// append opens a fresh, correctly named segment.
				if err := l.dropSegmentLocked(i); err != nil {
					return st, err
				}
			} else if err := os.Truncate(seg.path, int64(torn)); err != nil {
				return st, fmt.Errorf("wal: truncate torn tail: %w", err)
			}
			break
		}
	}

	// Position the writer at the end of the last surviving segment.
	if n := len(l.segs); n > 0 {
		seg := l.segs[n-1]
		f, err := os.OpenFile(seg.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return st, fmt.Errorf("wal: %w", err)
		}
		fi, err := f.Stat()
		if err != nil {
			f.Close()
			return st, fmt.Errorf("wal: %w", err)
		}
		l.f = f
		l.segSize = fi.Size()
	}
	l.last = prev
	l.synced = prev // everything read back from disk survived the crash
	l.replayed = true
	return st, nil
}

// dropSegmentLocked removes segment i (always the effective last) from disk
// and from the segment list.
func (l *Log) dropSegmentLocked(i int) error {
	if err := os.Remove(l.segs[i].path); err != nil {
		return fmt.Errorf("wal: drop torn segment: %w", err)
	}
	l.segs = append(l.segs[:i], l.segs[i+1:]...)
	return nil
}
