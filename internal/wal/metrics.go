package wal

import "kgaq/internal/obs"

// Durability-tier metrics: the append path is the mutation tier's fsync
// bottleneck, so both the whole append (frame + write + policy sync) and
// the fsync alone are measured.
var (
	metAppends = obs.Default().Counter("kgaq_wal_appends_total",
		"Mutation records appended to the WAL.")
	metAppendSeconds = obs.Default().Histogram("kgaq_wal_append_seconds",
		"WAL append latency including the fsync under sync=always.", obs.DefBuckets)
	metFsyncSeconds = obs.Default().Histogram("kgaq_wal_fsync_seconds",
		"WAL fsync latency.", obs.DefBuckets)
	metRotations = obs.Default().Counter("kgaq_wal_segment_rotations_total",
		"WAL segments sealed and rotated.")
)
