package semsim

import (
	"math"
	"testing"
	"testing/quick"

	"kgaq/internal/embedding/embtest"
	"kgaq/internal/kg"
	"kgaq/internal/kg/kgtest"
	"kgaq/internal/stats"
)

func figure1Calc(t *testing.T) (*Calculator, *kg.Graph) {
	t.Helper()
	g := kgtest.Figure1()
	m := embtest.Figure1Model(g)
	c, err := NewCalculator(g, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	return c, g
}

func TestNewCalculatorErrors(t *testing.T) {
	g := kgtest.Figure1()
	m := embtest.Figure1Model(g)
	if _, err := NewCalculator(nil, m, 0); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := NewCalculator(g, nil, 0); err == nil {
		t.Fatal("nil model accepted")
	}
	if _, err := NewCalculator(g, m, 1.5); err == nil {
		t.Fatal("floor ≥ 1 accepted")
	}
}

func TestPredSimPaperValues(t *testing.T) {
	c, g := figure1Calc(t)
	product := g.PredByName("product")
	cases := []struct {
		pred string
		want float64
	}{
		{"assembly", 0.98},
		{"country", 0.81},
		{"manufacturer", 0.90},
		{"designer", 0.80},
		{"nationality", 0.84},
	}
	for _, cs := range cases {
		got := c.PredSim(product, g.PredByName(cs.pred))
		if math.Abs(got-cs.want) > 1e-9 {
			t.Errorf("sim(%s, product) = %v, want %v", cs.pred, got, cs.want)
		}
	}
	if got := c.PredSim(product, product); got != 1 {
		t.Errorf("self similarity = %v", got)
	}
}

func TestPredSimFloor(t *testing.T) {
	g := kgtest.Figure1()
	m := embtest.Figure1Model(g)
	c, err := NewCalculator(g, m, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if c.Floor() != 0.05 {
		t.Fatalf("Floor = %v", c.Floor())
	}
	// All pairwise similarities must respect the floor.
	for a := 0; a < g.NumPredicates(); a++ {
		for b := 0; b < g.NumPredicates(); b++ {
			s := c.PredSim(kg.PredID(a), kg.PredID(b))
			if s < 0.05 || s > 1 {
				t.Fatalf("sim(%s,%s) = %v outside [floor,1]",
					g.PredName(kg.PredID(a)), g.PredName(kg.PredID(b)), s)
			}
		}
	}
}

func TestPredSimMatrix(t *testing.T) {
	c, g := figure1Calc(t)
	a, b := g.PredByName("assembly"), g.PredByName("country")
	s1 := c.PredSim(a, b)
	s2 := c.PredSim(b, a) // the precomputed matrix must be symmetric
	if s1 != s2 {
		t.Fatalf("asymmetric similarity: %v vs %v", s1, s2)
	}
	// The full matrix is materialised at construction: every row is the
	// shared backing array's slice and agrees with PredSim.
	for p := 0; p < g.NumPredicates(); p++ {
		row := c.SimRow(kg.PredID(p))
		logRow := c.LogSimRow(kg.PredID(p))
		if len(row) != g.NumPredicates() {
			t.Fatalf("row %d has %d entries, want %d", p, len(row), g.NumPredicates())
		}
		for q := 0; q < g.NumPredicates(); q++ {
			if row[q] != c.PredSim(kg.PredID(p), kg.PredID(q)) {
				t.Fatalf("SimRow(%d)[%d] disagrees with PredSim", p, q)
			}
			if got, want := logRow[q], math.Log(row[q]); got != want {
				t.Fatalf("LogSimRow(%d)[%d] = %v, want %v", p, q, got, want)
			}
		}
	}
}

func TestPathSimExample3(t *testing.T) {
	// Example 3: Audi TT via assembly→country has sim sqrt(0.98×0.81)=0.89.
	c, g := figure1Calc(t)
	product := g.PredByName("product")
	preds := []kg.PredID{g.PredByName("assembly"), g.PredByName("country")}
	got := c.PathSim(product, preds)
	want := math.Sqrt(0.98 * 0.81)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("PathSim = %v, want %v", got, want)
	}
}

func TestPathSimEmpty(t *testing.T) {
	c, g := figure1Calc(t)
	if got := c.PathSim(g.PredByName("product"), nil); got != 0 {
		t.Fatalf("empty path sim = %v, want 0", got)
	}
}

// Property: PathSim is monotone in each predicate similarity and bounded by
// the max/min per-edge similarity (geometric mean property).
func TestPathSimBounds(t *testing.T) {
	c, g := figure1Calc(t)
	product := g.PredByName("product")
	f := func(seed int64) bool {
		r := stats.NewRand(seed)
		n := 1 + r.Intn(3)
		preds := make([]kg.PredID, n)
		lo, hi := 1.0, 0.0
		for i := range preds {
			preds[i] = kg.PredID(r.Intn(g.NumPredicates()))
			s := c.PredSim(product, preds[i])
			if s < lo {
				lo = s
			}
			if s > hi {
				hi = s
			}
		}
		gm := c.PathSim(product, preds)
		return gm >= lo-1e-12 && gm <= hi+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestExhaustiveFigure1(t *testing.T) {
	c, g := figure1Calc(t)
	product := g.PredByName("product")
	us := g.NodeByName("Germany")
	best := Exhaustive(g, c, us, product, 3)

	wantSims := map[string]float64{
		"BMW_320":     0.98,
		"BMW_X6":      0.98,
		"Porsche_911": math.Sqrt(0.90 * 0.81),
		"Audi_TT":     math.Sqrt(0.98 * 0.81),
		"Lamando":     math.Sqrt(1.00 * 0.81),
		"KIA_K5":      math.Sqrt(0.80 * 0.84),
	}
	for name, want := range wantSims {
		got, ok := best[g.NodeByName(name)]
		if !ok {
			t.Fatalf("%s not reached", name)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("sim(%s) = %v, want %v", name, got, want)
		}
	}
	// τ = 0.85 separates the correct answers from KIA K5 (Example 2).
	auto := g.TypeByName("Automobile")
	correct := map[string]bool{}
	for u, s := range best {
		if g.HasType(u, auto) && s >= 0.85 {
			correct[g.Name(u)] = true
		}
	}
	if len(correct) != len(kgtest.Figure1Answers()) {
		t.Fatalf("correct = %v", correct)
	}
	for _, name := range kgtest.Figure1Answers() {
		if !correct[name] {
			t.Errorf("missing correct answer %s", name)
		}
	}
	if correct["KIA_K5"] {
		t.Error("KIA_K5 must be below τ")
	}
}

func TestExhaustiveRespectsBound(t *testing.T) {
	c, g := figure1Calc(t)
	product := g.PredByName("product")
	us := g.NodeByName("Germany")
	best1 := Exhaustive(g, c, us, product, 1)
	// 1 hop from Germany: BMW_320, BMW_X6 (assembly), Volkswagen, Porsche
	// (country), Schreyer (nationality), Merkel, Berlin.
	if _, ok := best1[g.NodeByName("Audi_TT")]; ok {
		t.Fatal("Audi_TT is 2 hops away, must be absent at n=1")
	}
	if _, ok := best1[g.NodeByName("BMW_320")]; !ok {
		t.Fatal("BMW_320 missing at n=1")
	}
	if got := Exhaustive(g, c, us, product, 0); len(got) != 0 {
		t.Fatal("n=0 should reach nothing")
	}
}

// Longer path can beat the shorter one: the remark in §III. Lamando's direct
// 2-hop designCompany path scores below its country→product path.
func TestLongerPathCanWin(t *testing.T) {
	c, g := figure1Calc(t)
	product := g.PredByName("product")
	// designCompany alone: 0.79. country→product: sqrt(0.81) = 0.9.
	one := c.PathSim(product, []kg.PredID{g.PredByName("designCompany")})
	two := c.PathSim(product, []kg.PredID{g.PredByName("country"), g.PredByName("product")})
	if two <= one {
		t.Fatalf("2-hop %v should beat 1-hop %v", two, one)
	}
}
