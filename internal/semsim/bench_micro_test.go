package semsim

import (
	"testing"

	"kgaq/internal/embedding/embtest"
	"kgaq/internal/kg"
	"kgaq/internal/kg/kgtest"
)

// Micro-benchmarks of the similarity layer: cached predicate similarity,
// exhaustive path enumeration (SSB's core), and batched greedy validation.

func benchCalc(b *testing.B) (*Calculator, *kg.Graph) {
	b.Helper()
	g := kgtest.Figure1()
	c, err := NewCalculator(g, embtest.Figure1Model(g), 0)
	if err != nil {
		b.Fatal(err)
	}
	return c, g
}

func BenchmarkPredSimCached(b *testing.B) {
	c, g := benchCalc(b)
	p1 := g.PredByName("product")
	p2 := g.PredByName("assembly")
	c.PredSim(p1, p2) // warm the cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.PredSim(p1, p2)
	}
}

func BenchmarkExhaustiveN3(b *testing.B) {
	c, g := benchCalc(b)
	us := g.NodeByName("Germany")
	pred := g.PredByName("product")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Exhaustive(g, c, us, pred, 3)
	}
}

func BenchmarkValidateBatch(b *testing.B) {
	c, g := benchCalc(b)
	us := g.NodeByName("Germany")
	pred := g.PredByName("product")
	bound := g.BoundedSubgraph(us, 3)
	pi := map[kg.NodeID]float64{}
	for u, d := range bound.Dist {
		pi[u] = 1.0 / float64(1+d)
	}
	var answers []kg.NodeID
	auto := g.TypeByName("Automobile")
	for _, u := range bound.Nodes {
		if g.HasType(u, auto) {
			answers = append(answers, u)
		}
	}
	cfg := ValidatorConfig{Repeat: 3, MaxLen: 3, Tau: 0.85}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Validate(g, c, us, pred, pi, answers, cfg)
	}
}
