package semsim

import (
	"container/heap"
	"context"
	"math"

	"kgaq/internal/kg"
)

// Exhaustive enumerates every simple path of length ≤ n starting at us and
// returns, for each reached node, the maximum path similarity (Eq. 3) to the
// query predicate. It is the core of the SSB baseline (Algorithm 1): exact
// but exponential in n (O(mⁿ) with average degree m).
//
// The caller filters the returned map by answer type and threshold τ.
// g is the graph view to traverse (a live snapshot or the plain graph).
func Exhaustive(g kg.ReadGraph, c *Calculator, us kg.NodeID, queryPred kg.PredID, n int) map[kg.NodeID]float64 {
	best := map[kg.NodeID]float64{}
	if n <= 0 {
		return best
	}
	logRow := c.LogSimRow(queryPred)
	onPath := map[kg.NodeID]bool{us: true}

	// The path's Eq. 2 score is carried as a running log-sum, so scoring an
	// extension is O(1) instead of O(len).
	var dfs func(u kg.NodeID, depth int, logSum float64)
	dfs = func(u kg.NodeID, depth int, logSum float64) {
		for _, he := range g.Neighbors(u) {
			if onPath[he.To] {
				continue
			}
			ls := logSum + logRow[he.Pred]
			if s := math.Exp(ls / float64(depth+1)); s > best[he.To] {
				best[he.To] = s
			}
			if depth+1 < n {
				onPath[he.To] = true
				dfs(he.To, depth+1, ls)
				onPath[he.To] = false
			}
		}
	}
	dfs(us, 0, 0)
	return best
}

// ValidateResult is the outcome of greedy correctness validation for one
// answer: the best similarity among the paths found and how many distinct
// paths reached the answer.
type ValidateResult struct {
	Similarity float64
	Paths      int
}

// ValidateStats reports the work done by a Validate call.
type ValidateStats struct {
	Expansions int
	PathsFound int
	Fallbacks  int
}

// ValidatorConfig tunes greedy correctness validation (§IV-B2).
type ValidatorConfig struct {
	// Repeat factor r: an answer is declared incorrect only after r
	// plausible paths to it all fall below τ (more paths → fewer false
	// negatives, more time). Zero means the paper's default of 3.
	Repeat int
	// MaxLen bounds path length; zero means 3 (the n-bounded default).
	MaxLen int
	// Budget bounds total node expansions; zero means 200000.
	Budget int
	// Tau is the correctness threshold. A path with similarity ≥ Tau
	// settles the answer as correct immediately (the max in Eq. 3 can only
	// grow); only paths with similarity ≥ PlausibleFraction·Tau count
	// toward the r failures — junk paths through unrelated predicates carry
	// no evidence about the answer and must not exhaust the repeat budget.
	// Zero means 0.85.
	Tau float64
	// PlausibleFraction scales the evidence floor (zero means 0.6).
	PlausibleFraction float64
}

func (v ValidatorConfig) withDefaults() ValidatorConfig {
	if v.Repeat <= 0 {
		v.Repeat = 3
	}
	if v.MaxLen <= 0 {
		v.MaxLen = 3
	}
	if v.Budget <= 0 {
		v.Budget = 200000
	}
	if v.Tau <= 0 {
		v.Tau = 0.85
	}
	if v.PlausibleFraction <= 0 {
		v.PlausibleFraction = 0.6
	}
	return v
}

// pathItem is a partial path in the greedy frontier. The path's Eq. 2 score
// lives in logSum (the running sum of log predicate similarities), so
// scoring an extension never re-walks the path; the predicate sequence
// itself is not stored at all.
type pathItem struct {
	tip      kg.NodeID
	priority float64     // π of the tip (paper: expand highest-π first)
	logSum   float64     // Σ log PredSim(queryPred, pred) over the path's edges
	nodes    []kg.NodeID // full node sequence for simple-path checking
}

type pathHeap []*pathItem

func (h pathHeap) Len() int           { return len(h) }
func (h pathHeap) Less(i, j int) bool { return h[i].priority > h[j].priority }
func (h pathHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *pathHeap) Push(x any)        { *h = append(*h, x.(*pathItem)) }
func (h *pathHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Validate performs greedy correctness validation (§IV-B2) for the given
// answers: a best-first search over simple paths from us, expanding the
// frontier path whose tip has the highest visiting probability π, recording
// every path that reaches a requested answer until each has r paths. The
// similarity reported per answer is the maximum Eq. 2 value over its found
// paths — a lower bound on the true Eq. 3 similarity, so validation can
// produce false negatives but never false positives (an answer whose true
// similarity is < τ can only yield paths with similarity < τ).
//
// Answers the guided search never reaches within budget fall back to a
// per-answer exhaustive search, keeping starvation from turning into false
// negatives wholesale.
func Validate(g kg.ReadGraph, c *Calculator, us kg.NodeID, queryPred kg.PredID, pi map[kg.NodeID]float64,
	answers []kg.NodeID, cfg ValidatorConfig) (map[kg.NodeID]ValidateResult, ValidateStats) {
	return ValidateCtx(context.Background(), g, c, us, queryPred, pi, answers, cfg)
}

// ctxCheckEvery is how many expansions pass between ctx polls in
// ValidateCtx; one expansion touches a node's whole neighbour list, so the
// poll amortises to noise while cancellation still lands within
// microseconds on real graphs.
const ctxCheckEvery = 64

// ValidateCtx is Validate with cancellation: ctx is polled inside the
// best-first search, and a cancelled call returns the verdicts settled so
// far without running the per-answer fallback. Callers must treat the
// result of a cancelled call as incomplete — absent answers carry no
// evidence of incorrectness.
func ValidateCtx(ctx context.Context, g kg.ReadGraph, c *Calculator, us kg.NodeID, queryPred kg.PredID,
	pi map[kg.NodeID]float64, answers []kg.NodeID, cfg ValidatorConfig) (map[kg.NodeID]ValidateResult, ValidateStats) {

	cfg = cfg.withDefaults()
	logRow := c.LogSimRow(queryPred)
	want := make(map[kg.NodeID]bool, len(answers))
	for _, a := range answers {
		want[a] = true
	}
	res := make(map[kg.NodeID]ValidateResult, len(answers))
	settled := make(map[kg.NodeID]bool, len(answers))
	var stats ValidateStats

	remaining := len(want)
	floor := cfg.PlausibleFraction * cfg.Tau

	h := &pathHeap{{tip: us, priority: pi[us], nodes: []kg.NodeID{us}}}
	heap.Init(h)
	// Popped items go to a local freelist and are recycled — node-sequence
	// storage included — so steady-state expansion stops allocating once the
	// freelist covers the frontier's churn.
	var free []*pathItem
	newItem := func(base *pathItem, to kg.NodeID, logSum float64) *pathItem {
		var ni *pathItem
		if n := len(free); n > 0 {
			ni, free = free[n-1], free[:n-1]
			ni.nodes = ni.nodes[:0]
		} else {
			ni = &pathItem{nodes: make([]kg.NodeID, 0, len(base.nodes)+1)}
		}
		ni.nodes = append(append(ni.nodes, base.nodes...), to)
		ni.tip, ni.priority, ni.logSum = to, pi[to], logSum
		return ni
	}
	for h.Len() > 0 && remaining > 0 && stats.Expansions < cfg.Budget {
		if stats.Expansions%ctxCheckEvery == 0 && ctx.Err() != nil {
			return res, stats
		}
		it := heap.Pop(h).(*pathItem)
		depth := len(it.nodes) - 1 // edges on the path so far
		if depth >= cfg.MaxLen {
			free = append(free, it)
			continue
		}
		stats.Expansions++
		for _, he := range g.Neighbors(it.tip) {
			onPath := false
			for _, u := range it.nodes {
				if u == he.To {
					onPath = true
					break
				}
			}
			if onPath {
				continue
			}
			logSum := it.logSum + logRow[he.Pred]
			if want[he.To] && !settled[he.To] {
				s := math.Exp(logSum / float64(depth+1))
				r := res[he.To]
				if s > r.Similarity {
					r.Similarity = s
				}
				stats.PathsFound++
				switch {
				case s >= cfg.Tau:
					// Eq. 3 takes the maximum over matches: one path at or
					// above τ settles correctness for good.
					r.Paths++
					settled[he.To] = true
					remaining--
				case s >= floor:
					// A plausible near-miss: counts toward the r failures.
					r.Paths++
					if r.Paths >= cfg.Repeat {
						settled[he.To] = true
						remaining--
					}
				default:
					// Junk path through unrelated predicates: no evidence.
				}
				res[he.To] = r
			}
			if depth+1 < cfg.MaxLen {
				// The node sequence is copied only here, once the extension
				// is actually pushed; scoring above allocated nothing.
				heap.Push(h, newItem(it, he.To, logSum))
			}
		}
		free = append(free, it)
	}

	// Fallback for answers the guided search never reached at all (their
	// Similarity is still zero; any found path, junk included, raises it).
	for _, a := range answers {
		if ctx.Err() != nil {
			return res, stats
		}
		if res[a].Similarity == 0 {
			stats.Fallbacks++
			if s, ok := fallbackBest(g, c, us, queryPred, a, cfg.MaxLen); ok {
				res[a] = ValidateResult{Similarity: s, Paths: 1}
			} else {
				res[a] = ValidateResult{}
			}
		}
	}
	return res, stats
}

// fallbackBest runs a depth-bounded exhaustive search for the single answer
// a, returning the best path similarity from us.
func fallbackBest(g kg.ReadGraph, c *Calculator, us kg.NodeID, queryPred kg.PredID, a kg.NodeID, maxLen int) (float64, bool) {
	logRow := c.LogSimRow(queryPred)
	best := -1.0
	onPath := map[kg.NodeID]bool{us: true}
	var dfs func(u kg.NodeID, depth int, logSum float64)
	dfs = func(u kg.NodeID, depth int, logSum float64) {
		for _, he := range g.Neighbors(u) {
			if onPath[he.To] {
				continue
			}
			ls := logSum + logRow[he.Pred]
			if he.To == a {
				if s := math.Exp(ls / float64(depth+1)); s > best {
					best = s
				}
			}
			if depth+1 < maxLen {
				onPath[he.To] = true
				dfs(he.To, depth+1, ls)
				onPath[he.To] = false
			}
		}
	}
	dfs(us, 0, 0)
	if best < 0 {
		return 0, false
	}
	return best, true
}
