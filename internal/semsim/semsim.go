package semsim

import (
	"fmt"
	"math"

	"kgaq/internal/embedding"
	"kgaq/internal/kg"
)

// DefaultFloor is the minimum predicate similarity. Raw cosines can be zero
// or negative; clamping to a small positive floor keeps every transition
// probability nonzero, which Lemma 1 (irreducibility of the semantic-aware
// walk) relies on.
const DefaultFloor = 0.01

// Calculator holds the full P×P predicate-similarity matrix for one graph
// and embedding model, precomputed once at construction (P is the predicate
// vocabulary — small — so the matrix is a handful of kilobytes even on large
// graphs). After NewCalculator the Calculator is immutable and safe for
// unrestricted concurrent use; one Calculator is shared by every query an
// engine serves.
type Calculator struct {
	g     kg.ReadGraph
	model embedding.Model
	floor float64
	nPred int
	// sim and logSim are flat row-major P×P matrices: sim[a*P+b] is the
	// clamped Eq. 4 similarity of predicates a and b, logSim its natural
	// log (the form Eq. 2's geometric mean consumes).
	sim    []float64
	logSim []float64
}

// NewCalculator builds a Calculator with the given similarity floor
// (DefaultFloor when floor <= 0), precomputing the full predicate-similarity
// matrix. The matrix depends only on the predicate vocabulary, which live
// graphs keep frozen, so one Calculator serves every snapshot of a live
// graph; traversal helpers (Exhaustive, ValidateCtx) take the snapshot to
// walk explicitly.
func NewCalculator(g kg.ReadGraph, model embedding.Model, floor float64) (*Calculator, error) {
	if g == nil || model == nil {
		return nil, fmt.Errorf("semsim: nil graph or model")
	}
	if floor <= 0 {
		floor = DefaultFloor
	}
	if floor >= 1 {
		return nil, fmt.Errorf("semsim: floor %v must be below 1", floor)
	}
	p := g.NumPredicates()
	c := &Calculator{
		g:      g,
		model:  model,
		floor:  floor,
		nPred:  p,
		sim:    make([]float64, p*p),
		logSim: make([]float64, p*p),
	}
	for a := 0; a < p; a++ {
		c.sim[a*p+a] = 1
		for b := a + 1; b < p; b++ {
			s := embedding.PredicateSimilarity(c.model, kg.PredID(a), kg.PredID(b))
			if s < floor {
				s = floor
			}
			if s > 1 {
				s = 1
			}
			c.sim[a*p+b] = s
			c.sim[b*p+a] = s
		}
	}
	for i, s := range c.sim {
		c.logSim[i] = math.Log(s)
	}
	return c, nil
}

// Graph returns the graph the Calculator was built over. For a live graph
// this is the construction-time view; traversals that must observe a
// specific epoch pass their snapshot explicitly instead.
func (c *Calculator) Graph() kg.ReadGraph { return c.g }

// Floor returns the similarity floor in effect.
func (c *Calculator) Floor() float64 { return c.floor }

// PredSim returns the clamped cosine similarity between predicates a and b
// (Eq. 4), in [floor, 1] — a single index into the precomputed matrix.
func (c *Calculator) PredSim(a, b kg.PredID) float64 {
	return c.sim[int(a)*c.nPred+int(b)]
}

// SimRow returns the precomputed similarity row of predicate p: SimRow(p)[q]
// is PredSim(p, q). The returned slice is shared and must not be modified.
func (c *Calculator) SimRow(p kg.PredID) []float64 {
	return c.sim[int(p)*c.nPred : (int(p)+1)*c.nPred]
}

// LogSimRow returns the natural-log similarity row of predicate p, the form
// the greedy validator's incremental Eq. 2 scoring consumes. The returned
// slice is shared and must not be modified.
func (c *Calculator) LogSimRow(p kg.PredID) []float64 {
	return c.logSim[int(p)*c.nPred : (int(p)+1)*c.nPred]
}

// PathSim returns the semantic similarity of a subgraph match whose path
// carries the given predicates, against the query predicate (Eq. 2): the
// geometric mean of per-edge predicate similarities. An empty path has
// similarity 0 (no match).
func (c *Calculator) PathSim(queryPred kg.PredID, preds []kg.PredID) float64 {
	if len(preds) == 0 {
		return 0
	}
	// Work in log space: geometric mean of l factors.
	row := c.LogSimRow(queryPred)
	logSum := 0.0
	for _, p := range preds {
		logSum += row[p]
	}
	return math.Exp(logSum / float64(len(preds)))
}
