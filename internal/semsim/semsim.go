// Package semsim implements the semantic-similarity machinery of §III and
// §IV-B2 of the paper: predicate similarity via KG-embedding cosine (Eq. 4),
// path similarity as the geometric mean of predicate similarities (Eq. 2),
// answer similarity as the maximum over subgraph matches (Eq. 3), the
// exhaustive bounded path enumeration used by the SSB baseline, and the
// π-guided greedy correctness validator with repeat factor r.
package semsim

import (
	"fmt"
	"math"

	"kgaq/internal/embedding"
	"kgaq/internal/kg"
)

// DefaultFloor is the minimum predicate similarity. Raw cosines can be zero
// or negative; clamping to a small positive floor keeps every transition
// probability nonzero, which Lemma 1 (irreducibility of the semantic-aware
// walk) relies on.
const DefaultFloor = 0.01

// Calculator computes and caches predicate similarities for one graph and
// embedding model. It is safe for concurrent readers after warm-up only if
// no new predicate pairs are queried; engines use one Calculator per query
// execution, so no locking is needed.
type Calculator struct {
	g     *kg.Graph
	model embedding.Model
	floor float64
	// cache is keyed by (min, max) predicate id; similarity is symmetric.
	cache map[[2]kg.PredID]float64
}

// NewCalculator builds a Calculator with the given similarity floor
// (DefaultFloor when floor <= 0).
func NewCalculator(g *kg.Graph, model embedding.Model, floor float64) (*Calculator, error) {
	if g == nil || model == nil {
		return nil, fmt.Errorf("semsim: nil graph or model")
	}
	if floor <= 0 {
		floor = DefaultFloor
	}
	if floor >= 1 {
		return nil, fmt.Errorf("semsim: floor %v must be below 1", floor)
	}
	return &Calculator{
		g:     g,
		model: model,
		floor: floor,
		cache: map[[2]kg.PredID]float64{},
	}, nil
}

// Graph returns the underlying knowledge graph.
func (c *Calculator) Graph() *kg.Graph { return c.g }

// Floor returns the similarity floor in effect.
func (c *Calculator) Floor() float64 { return c.floor }

// PredSim returns the clamped cosine similarity between predicates a and b
// (Eq. 4), in [floor, 1].
func (c *Calculator) PredSim(a, b kg.PredID) float64 {
	if a == b {
		return 1
	}
	k := [2]kg.PredID{a, b}
	if a > b {
		k = [2]kg.PredID{b, a}
	}
	if s, ok := c.cache[k]; ok {
		return s
	}
	s := embedding.PredicateSimilarity(c.model, a, b)
	if s < c.floor {
		s = c.floor
	}
	if s > 1 {
		s = 1
	}
	c.cache[k] = s
	return s
}

// PathSim returns the semantic similarity of a subgraph match whose path
// carries the given predicates, against the query predicate (Eq. 2): the
// geometric mean of per-edge predicate similarities. An empty path has
// similarity 0 (no match).
func (c *Calculator) PathSim(queryPred kg.PredID, preds []kg.PredID) float64 {
	if len(preds) == 0 {
		return 0
	}
	// Work in log space: geometric mean of l factors.
	logSum := 0.0
	for _, p := range preds {
		logSum += math.Log(c.PredSim(queryPred, p))
	}
	return math.Exp(logSum / float64(len(preds)))
}
