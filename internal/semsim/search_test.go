package semsim

import (
	"math"
	"testing"

	"kgaq/internal/embedding/embtest"
	"kgaq/internal/kg"
	"kgaq/internal/kg/kgtest"
)

// fakePi assigns a plausible visiting probability: higher for nodes closer
// to the start, which is the regime the greedy validator is designed for.
func fakePi(g *kg.Graph, us kg.NodeID) map[kg.NodeID]float64 {
	b := g.BoundedSubgraph(us, 4)
	pi := map[kg.NodeID]float64{}
	total := 0.0
	for u, d := range b.Dist {
		w := 1.0 / float64(1+d*d)
		pi[u] = w
		total += w
	}
	for u := range pi {
		pi[u] /= total
	}
	return pi
}

func TestValidateFindsAllAnswers(t *testing.T) {
	c, g := figure1Calc(t)
	product := g.PredByName("product")
	us := g.NodeByName("Germany")
	pi := fakePi(g, us)

	var answers []kg.NodeID
	for _, name := range append(kgtest.Figure1Answers(), "KIA_K5") {
		answers = append(answers, g.NodeByName(name))
	}
	res, stats := Validate(g, c, us, product, pi, answers, ValidatorConfig{Repeat: 3, MaxLen: 3})
	if stats.Expansions == 0 {
		t.Fatal("no expansions recorded")
	}

	exact := Exhaustive(g, c, us, product, 3)
	tau := 0.85
	for _, a := range answers {
		got := res[a]
		if got.Paths == 0 {
			t.Fatalf("%s: no path found", g.Name(a))
		}
		// No false positives (Theorem-free guarantee of §IV-B2): the greedy
		// similarity never exceeds the exhaustive one.
		if got.Similarity > exact[a]+1e-9 {
			t.Fatalf("%s: greedy similarity %v exceeds exact %v", g.Name(a), got.Similarity, exact[a])
		}
		// On this small fixture with r=3 the heuristic is exact.
		if math.Abs(got.Similarity-exact[a]) > 1e-9 {
			t.Errorf("%s: greedy %v != exact %v", g.Name(a), got.Similarity, exact[a])
		}
		wantCorrect := exact[a] >= tau
		gotCorrect := got.Similarity >= tau
		if wantCorrect != gotCorrect {
			t.Errorf("%s: correctness %v, want %v", g.Name(a), gotCorrect, wantCorrect)
		}
	}
}

func TestValidateRepeatFactorReducesFalseNegatives(t *testing.T) {
	c, g := figure1Calc(t)
	product := g.PredByName("product")
	us := g.NodeByName("Germany")
	pi := fakePi(g, us)
	lamando := g.NodeByName("Lamando")

	// With r=1 the first-found path may be the weaker designCompany one;
	// with a larger r the better country→product path must be found.
	resBig, _ := Validate(g, c, us, product, pi, []kg.NodeID{lamando}, ValidatorConfig{Repeat: 4, MaxLen: 3})
	exact := Exhaustive(g, c, us, product, 3)
	if math.Abs(resBig[lamando].Similarity-exact[lamando]) > 1e-9 {
		t.Fatalf("r=4 similarity %v, want exact %v", resBig[lamando].Similarity, exact[lamando])
	}
	resSmall, _ := Validate(g, c, us, product, pi, []kg.NodeID{lamando}, ValidatorConfig{Repeat: 1, MaxLen: 3})
	if resSmall[lamando].Similarity > resBig[lamando].Similarity+1e-9 {
		t.Fatal("smaller r produced higher similarity")
	}
}

func TestValidateUnreachableAnswer(t *testing.T) {
	// Build a graph with a disconnected answer.
	b := kg.NewBuilder()
	us := b.AddNode("start", "Country")
	a1 := b.AddNode("car1", "Automobile")
	if err := b.AddEdge(a1, "assembly", us); err != nil {
		t.Fatal(err)
	}
	island := b.AddNode("island_car", "Automobile")
	other := b.AddNode("elsewhere", "Country")
	if err := b.AddEdge(island, "assembly", other); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	m := embtest.Figure1Model(g)
	c, err := NewCalculator(g, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	pi := fakePi(g, us)
	res, stats := Validate(g, c, us, g.PredByName("assembly"), pi,
		[]kg.NodeID{island}, ValidatorConfig{})
	if res[island].Paths != 0 || res[island].Similarity != 0 {
		t.Fatalf("unreachable answer got %+v", res[island])
	}
	if stats.Fallbacks != 1 {
		t.Fatalf("fallbacks = %d, want 1", stats.Fallbacks)
	}
}

func TestValidateBudgetExhaustion(t *testing.T) {
	c, g := figure1Calc(t)
	product := g.PredByName("product")
	us := g.NodeByName("Germany")
	pi := fakePi(g, us)
	lamando := g.NodeByName("Lamando")
	// Budget of 1 exhausts immediately; the fallback must still find it.
	res, stats := Validate(g, c, us, product, pi, []kg.NodeID{lamando},
		ValidatorConfig{Repeat: 3, MaxLen: 3, Budget: 1})
	if res[lamando].Paths == 0 {
		t.Fatal("fallback did not rescue budget exhaustion")
	}
	if stats.Expansions > 1 {
		t.Fatalf("expansions = %d, want ≤ 1", stats.Expansions)
	}
}

func TestValidateDefaults(t *testing.T) {
	cfg := ValidatorConfig{}.withDefaults()
	if cfg.Repeat != 3 || cfg.MaxLen != 3 || cfg.Budget != 200000 {
		t.Fatalf("defaults = %+v", cfg)
	}
}

func TestValidateEmptyAnswerSet(t *testing.T) {
	c, g := figure1Calc(t)
	us := g.NodeByName("Germany")
	res, _ := Validate(g, c, us, g.PredByName("product"), fakePi(g, us), nil, ValidatorConfig{})
	if len(res) != 0 {
		t.Fatalf("res = %v, want empty", res)
	}
}
