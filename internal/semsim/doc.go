// Package semsim implements the semantic-similarity machinery of §III and
// §IV-B2 of the paper: predicate similarity via KG-embedding cosine (Eq. 4),
// path similarity as the geometric mean of predicate similarities (Eq. 2),
// answer similarity as the maximum over subgraph matches (Eq. 3), the
// exhaustive bounded path enumeration used by the SSB baseline, and the
// π-guided greedy correctness validator with repeat factor r.
package semsim
