// Command kgaqload replays a scripted workload against a running kgaqd at a
// fixed open-loop arrival rate and reports per-block outcome statistics.
//
//	kgaqload -script examples/workloads/mixed.json -profile tiny
//	kgaqload -script examples/workloads/overload.json -graph data/sim.graph \
//	    -url http://localhost:8080 -rate 200 -duration 30s -json report.json
//
// The template catalog (entity names by type, predicates, attributes) is
// extracted from the same graph the server loaded — pass the matching
// -graph file or -profile name. Arrivals beyond the script's in-flight
// bound are dropped and counted, never queued client-side, so offered load
// stays honest when the server sheds.
//
// -retries N re-sends a shed (429/503) request up to N times with jittered
// exponential backoff (honouring the server's Retry-After, capped by
// -retry-max-wait) before counting it as shed; retried completions are
// reported separately so shedding stays visible in the report.
//
// Against a federation coordinator, -member-urls lists the member base URLs
// (the same [name=]url,... form kgaqd -federate-members takes): each is
// health-checked before the workload starts, so a run against a federation
// with a down member fails fast with a clear error instead of drowning in
// per-request scatter failures.
//
// For CI smoke jobs, -max-5xx and -min-completed turn the report into an
// assertion: the process exits non-zero when the run saw more 5xx responses
// or fewer completions than allowed. -metrics-url scrapes the server's
// Prometheus endpoint after the run and fails on a malformed exposition;
// adding -metrics-lint README.md additionally asserts every backticked
// kgaq_* name in the doc's metrics reference is actually exported, keeping
// the table and the registry in lockstep.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"kgaq/internal/buildinfo"
	"kgaq/internal/cmdutil"
	"kgaq/internal/datagen"
	"kgaq/internal/kg"
	"kgaq/internal/workload"
)

func main() {
	scriptPath := flag.String("script", "", "workload script (JSON, see examples/workloads)")
	url := flag.String("url", "http://localhost:8080", "base URL of the kgaqd server")
	graphPath := flag.String("graph", "", "graph file backing the template catalog (same data the server loaded)")
	profile := flag.String("profile", "", "generate this profile for the template catalog instead of loading a file")
	rate := flag.Float64("rate", 0, "override the script's arrival rate (req/s)")
	duration := flag.Duration("duration", 0, "override the script's duration")
	seed := flag.Int64("seed", 0, "override the script's random seed")
	retries := flag.Int("retries", 0, "re-send a shed (429/503) request up to this many times with jittered exponential backoff, honouring Retry-After")
	retryMaxWait := flag.Duration("retry-max-wait", 2*time.Second, "cap on a single retry backoff wait")
	jsonPath := flag.String("json", "", "also write the full report as JSON to this path (- for stdout)")
	max5xx := flag.Int64("max-5xx", -1, "fail when the run sees more than this many 5xx responses (-1 = no assertion)")
	minCompleted := flag.Int64("min-completed", -1, "fail when fewer than this many requests complete (-1 = no assertion)")
	metricsURL := flag.String("metrics-url", "", "scrape this Prometheus endpoint (kgaqd's debug listener /metrics) after the run and fail on a malformed exposition")
	metricsLint := flag.String("metrics-lint", "", "markdown file whose backticked kgaq_* metric names must all appear in the -metrics-url scrape (fails otherwise)")
	memberURLs := flag.String("member-urls", "", "federation member base URLs ([name=]url, comma-separated): each must answer /v1/healthz before the workload starts")
	version := flag.Bool("version", false, "print build provenance and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Get("kgaqload"))
		return
	}
	buildinfo.Register("kgaqload")

	if *scriptPath == "" {
		fail("-script is required")
	}
	script, err := workload.LoadScript(*scriptPath)
	if err != nil {
		fail("%v", err)
	}
	if *seed != 0 {
		script.Seed = *seed
	}

	g, err := catalogGraph(*graphPath, *profile)
	if err != nil {
		fail("%v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *memberURLs != "" {
		if err := preflightMembers(ctx, *memberURLs); err != nil {
			fail("%v", err)
		}
	}

	runner := &workload.Runner{
		Script:       script,
		BaseURL:      *url,
		Catalog:      workload.NewCatalog(g),
		Rate:         *rate,
		Duration:     *duration,
		Retries:      *retries,
		RetryMaxWait: *retryMaxWait,
	}
	rep, err := runner.Run(ctx)
	if err != nil {
		fail("%v", err)
	}

	printSummary(rep)
	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, rep); err != nil {
			fail("%v", err)
		}
	}

	failed := false
	if *metricsURL != "" {
		if err := checkMetrics(ctx, *metricsURL, *metricsLint); err != nil {
			fmt.Fprintf(os.Stderr, "kgaqload: ASSERTION FAILED: %v\n", err)
			failed = true
		}
	} else if *metricsLint != "" {
		fail("-metrics-lint requires -metrics-url")
	}
	if *max5xx >= 0 && rep.Status5xx > *max5xx {
		fmt.Fprintf(os.Stderr, "kgaqload: ASSERTION FAILED: %d 5xx responses > allowed %d\n", rep.Status5xx, *max5xx)
		failed = true
	}
	if *minCompleted >= 0 && rep.Completed < *minCompleted {
		fmt.Fprintf(os.Stderr, "kgaqload: ASSERTION FAILED: %d completed < required %d\n", rep.Completed, *minCompleted)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}

// checkMetrics scrapes the server's /metrics endpoint — proving the
// exposition parses strictly — and, when a lint doc is given, asserts every
// metric name the doc's reference table promises is actually exported.
func checkMetrics(ctx context.Context, url, lintPath string) error {
	fams, err := workload.Scrape(ctx, url)
	if err != nil {
		return err
	}
	fmt.Printf("metrics scrape: %d well-formed families from %s\n", len(fams), url)
	if lintPath == "" {
		return nil
	}
	documented, err := workload.DocumentedMetrics(lintPath)
	if err != nil {
		return err
	}
	if missing := workload.LintMetrics(fams, documented); len(missing) > 0 {
		return fmt.Errorf("%s documents %d metrics the server does not export: %v",
			lintPath, len(missing), missing)
	}
	fmt.Printf("metrics lint: all %d documented metrics present (%s)\n", len(documented), lintPath)
	return nil
}

// catalogGraph resolves the -graph / -profile pair into the graph that
// seeds the template catalog.
func catalogGraph(graphPath, profile string) (*kg.Graph, error) {
	switch {
	case profile != "":
		p, ok := datagen.ProfileByName(profile)
		if !ok {
			return nil, fmt.Errorf("unknown profile %q", profile)
		}
		ds, err := datagen.Generate(p)
		if err != nil {
			return nil, fmt.Errorf("generate: %w", err)
		}
		return ds.Graph, nil
	case graphPath != "":
		g, _, err := cmdutil.LoadGraph(graphPath)
		return g, err
	default:
		return nil, fmt.Errorf("need -graph or -profile for the template catalog")
	}
}

func printSummary(rep *workload.Report) {
	fmt.Printf("workload %q: target %.0f req/s for %.1fs, achieved %.1f completions/s\n",
		rep.Script, rep.TargetRate, rep.DurationS, rep.AchievedRate)
	fmt.Printf("  offered %d  dropped %d  skipped %d  completed %d  shed %d  errors %d (5xx %d)  degraded %d\n",
		rep.Offered, rep.Dropped, rep.Skipped, rep.Completed, rep.Shed, rep.Errors, rep.Status5xx, rep.Degraded)
	if rep.Retries > 0 {
		fmt.Printf("  retries %d  retried_completed %d\n", rep.Retries, rep.RetriedCompleted)
	}
	fmt.Printf("  latency p50 %.1fms  p95 %.1fms  p99 %.1fms\n",
		rep.LatencyP50MS, rep.LatencyP95MS, rep.LatencyP99MS)
	for _, b := range rep.Blocks {
		fmt.Printf("  block %-18s %-10s offered %-6d completed %-6d shed %-5d errors %-4d p50 %.1fms p99 %.1fms",
			b.Name, "("+b.Kind+")", b.Offered, b.Completed, b.Shed, b.Errors, b.LatencyP50MS, b.LatencyP99MS)
		if b.AchievedEB != nil {
			fmt.Printf("  eb p50 %.4f p95 %.4f max %.4f", b.AchievedEB.P50, b.AchievedEB.P95, b.AchievedEB.Max)
		}
		fmt.Println()
	}
}

func writeJSON(path string, rep *workload.Report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// preflightMembers verifies every listed federation member answers
// /v1/healthz before the workload starts. Entries take the same
// "[name=]http://host:port" form as kgaqd -federate-members.
func preflightMembers(ctx context.Context, spec string) error {
	client := &http.Client{Timeout: 3 * time.Second}
	var down []string
	checked := 0
	for _, raw := range strings.Split(spec, ",") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		if name, url, ok := strings.Cut(raw, "="); ok && !strings.Contains(name, "/") {
			raw = strings.TrimSpace(url)
		}
		u := strings.TrimRight(raw, "/")
		checked++
		if err := probeMember(ctx, client, u); err != nil {
			down = append(down, fmt.Sprintf("%s (%v)", u, err))
		}
	}
	if checked == 0 {
		return fmt.Errorf("-member-urls: no member URLs in %q", spec)
	}
	if len(down) > 0 {
		return fmt.Errorf("federation member health preflight failed, %d/%d member(s) down: %s",
			len(down), checked, strings.Join(down, "; "))
	}
	fmt.Fprintf(os.Stderr, "kgaqload: all %d federation member(s) healthy\n", checked)
	return nil
}

func probeMember(ctx context.Context, client *http.Client, baseURL string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/v1/healthz", nil)
	if err != nil {
		return err
	}
	res, err := client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(res.Body, 4096))
		res.Body.Close()
	}()
	if res.StatusCode != http.StatusOK {
		return fmt.Errorf("HTTP %d", res.StatusCode)
	}
	return nil
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "kgaqload: "+format+"\n", args...)
	os.Exit(1)
}
