// Command kgaqd serves approximate aggregate queries over HTTP/JSON: one
// engine, shared by all requests, exercised under real concurrency through
// the context-aware execution API.
//
//	kgaqd -profile tiny -addr :8080
//	kgaqd -graph data/dbpedia-sim.graph -emb data/dbpedia-sim.emb
//
//	curl -s localhost:8080/v1/query -H 'Content-Type: application/json' -d '{
//	  "query": "AVG(price) MATCH (g:Country name=Country_0)-[product]->(c:Automobile) TARGET c",
//	  "error_bound": 0.05, "timeout_ms": 2000
//	}'
//
// Per-request overrides (error_bound, confidence, tau, seed, max_draws,
// sampler, timeout_ms, min_epoch, shards) map 1:1 onto the engine's
// QueryOptions;
// "stream": true switches the response to NDJSON with one line per
// refinement round, and "aggregates": [{"func":"COUNT"}, …] evaluates
// several aggregates over one shared sample. SIGINT/SIGTERM drain
// gracefully: in-flight queries are cancelled through their contexts and
// report partial results before the listener closes.
//
// Repeat traffic should prepare once and execute many times:
// POST /v1/prepare compiles a query into a cached plan (TTL/LRU, see
// -plan-cap / -plan-ttl) and returns its content-hash id;
// POST /v1/plans/{id}/query executes it — single-aggregate, streaming, or
// multi-aggregate — skipping resolution, convergence and the answer-space
// build. /debug/plans (on -debug-addr) lists the resident plans.
//
// The served graph is live by default: POST /v1/mutate applies atomic
// NDJSON mutation batches (add_entity, add_edge, remove_edge, set_attr,
// set_types) and returns the new epoch, which /v1/query's min_epoch turns
// into read-your-writes; a background compactor folds the write delta into
// a fresh immutable graph off the query path. -read-only disables all of
// it and serves the loaded graph immutably.
//
// With -data-dir the live graph is durable: every mutation batch is framed
// into an append-only WAL before the 200 (fsynced first under the default
// -wal-sync=always), a background checkpointer (-checkpoint-every) folds
// the state into an atomic snapshot and trims the WAL behind it, and boot
// recovers the newest valid checkpoint plus the WAL tail — a SIGKILL'd
// server restarts to exactly the last acknowledged epoch. healthz and
// /debug/durability (on -debug-addr) report the durability picture.
//
// Federation (DESIGN.md "Federation: remote strata"): every kgaqd is
// member-capable — POST /v1/federate/sample runs one stratum round against
// the local graph. Started with -federate-members (or
// -federate-members-file), kgaqd becomes a coordinator instead: /v1/query
// scatters across the listed members, merges their draw streams through the
// stratified Horvitz–Thompson combiner, and refines with Neyman-allocated
// rounds until the global (eb, α) guarantee holds. -federate-timeout,
// -federate-retries and -federate-hedge-after tune the per-member RPC
// deadline, retry budget and tail-latency hedge; healthz gains a federation
// block and /debug/federation (on -debug-addr) probes the members.
//
// The debug listener (-debug-addr) is also the observability surface:
// GET /metrics serves every tier's counters, gauges and histograms in
// Prometheus text format, and each request's lifecycle trace — spans for
// resolve/convergence plus per-round draws, validation calls and the
// shrinking achieved error bound — lands in a bounded ring under
// /debug/trace (list) and /debug/trace/{id} (one trace, id echoed in the
// X-Trace-ID response header and the response body). -trace-ring bounds
// the ring; -trace-sample traces one request in N.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"kgaq/internal/admission"
	"kgaq/internal/buildinfo"
	"kgaq/internal/cmdutil"
	"kgaq/internal/core"
	"kgaq/internal/federate"
	"kgaq/internal/httpapi"
	"kgaq/internal/live"
	"kgaq/internal/wal"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	graphPath := flag.String("graph", "", "graph snapshot or textual dump (formats auto-detected)")
	embPath := flag.String("emb", "", "embedding snapshot (from kgen)")
	profile := flag.String("profile", "", "generate a profile instead of loading files")
	eb := flag.Float64("eb", 0.01, "default relative error bound")
	conf := flag.Float64("conf", 0.95, "default confidence level")
	tau := flag.Float64("tau", 0, "default similarity threshold (0 = profile default / 0.85)")
	seed := flag.Int64("seed", 1, "default engine seed")
	grace := flag.Duration("grace", 5*time.Second, "shutdown grace period")
	cacheBytes := flag.Int64("cache-bytes", 0, "answer-space cache bound in bytes (0 = default, negative = disabled)")
	shards := flag.Int("shards", 1, "partition query execution into this many shards (per-request override via \"shards\")")
	planCap := flag.Int("plan-cap", httpapi.DefaultPlanCap, "maximum cached prepared plans (LRU beyond)")
	planTTL := flag.Duration("plan-ttl", httpapi.DefaultPlanTTL, "prepared plans expire this long after their last use")
	debugAddr := flag.String("debug-addr", "", "serve pprof and cache counters on this address (e.g. localhost:6060; empty = disabled)")
	readOnly := flag.Bool("read-only", false, "disable /v1/mutate and serve the loaded graph immutably")
	dataDir := flag.String("data-dir", "", "durability root: mutation WAL + checkpoints; boot recovers the newest checkpoint and replays the WAL tail (empty = memory-only)")
	walSync := flag.String("wal-sync", "always", "WAL sync policy: always (fsync before ack), interval, none")
	walSyncEvery := flag.Duration("wal-sync-interval", 100*time.Millisecond, "background fsync period under -wal-sync=interval")
	walSegBytes := flag.Int64("wal-segment-bytes", 0, "rotate WAL segments at this size (0 = 64 MiB)")
	checkpointEvery := flag.Duration("checkpoint-every", 30*time.Second, "background checkpoint interval; each checkpoint trims the WAL behind it (0 = only at shutdown)")
	compactEvery := flag.Duration("compact-interval", 2*time.Second, "background compactor check interval")
	compactMin := flag.Int("compact-min-delta", 256, "fold the mutation delta once it covers this many nodes")
	maxInFlight := flag.Int("max-inflight", 0, "concurrently executing requests (0 = 2×GOMAXPROCS)")
	queueDepth := flag.Int("queue-depth", 0, "requests waiting for a slot before fast 429 shedding (0 = 4×max-inflight)")
	clientRate := flag.Float64("client-rate", 0, "per-client request rate limit in req/s (0 = unlimited)")
	clientBurst := flag.Int("client-burst", 0, "per-client token-bucket burst (0 = ceil of -client-rate)")
	clientHeader := flag.String("client-header", httpapi.ClientIDHeader, "request header carrying the client identity for rate limiting")
	maxEB := flag.Float64("max-eb", 0.25, "honesty floor for graceful degradation: the loosest effective error bound the server may relax toward under pressure (0 = never degrade, shed instead)")
	degradePressure := flag.Float64("degrade-pressure", 0.5, "queue-fill fraction beyond which effective error bounds relax toward -max-eb")
	sloP99 := flag.Duration("slo-p99", 0, "serving latency objective: healthz reports slo_ok against this p99 (0 = no SLO)")
	accessLog := flag.Bool("access-log", true, "write one structured (JSON) access-log line per request to stderr")
	traceRing := flag.Int("trace-ring", 256, "finished query-lifecycle traces retained for /debug/trace (0 = default 256)")
	traceSample := flag.Int("trace-sample", 1, "trace one request in N (1 = every request, 0 = tracing off)")
	fedMembers := flag.String("federate-members", "", "coordinate a federation over these members: comma-separated [name=]http://host:port list; /v1/query scatters across them")
	fedMembersFile := flag.String("federate-members-file", "", "members config file (one \"url\" or \"name url\" per line, # comments); alternative to -federate-members")
	fedTimeout := flag.Duration("federate-timeout", 10*time.Second, "per-member, per-attempt deadline of one scatter RPC")
	fedRetries := flag.Int("federate-retries", 2, "additional attempts after a failed member RPC before the member counts as dead for the query")
	fedHedge := flag.Duration("federate-hedge-after", 400*time.Millisecond, "re-issue a still-unanswered member RPC after this long, first answer wins (negative = no hedging)")
	version := flag.Bool("version", false, "print build provenance and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Get("kgaqd"))
		return
	}
	buildinfo.Register("kgaqd")

	g, model, epoch, err := cmdutil.LoadGraphModel(*graphPath, *embPath, *profile, tau)
	if err != nil {
		fail("%v", err)
	}
	opts := core.Options{
		ErrorBound: *eb, Confidence: *conf, Tau: *tau, Seed: *seed,
		CacheMaxBytes: *cacheBytes, Shards: *shards,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var api *httpapi.Server
	var dur *live.Durable
	if *readOnly {
		eng, err := core.NewEngine(g, model, opts)
		if err != nil {
			fail("%v", err)
		}
		api = httpapi.NewServer(eng)
	} else {
		var store *live.Store
		if *dataDir != "" {
			policy, err := wal.ParseSyncPolicy(*walSync)
			if err != nil {
				fail("%v", err)
			}
			d, err := live.Recover(live.DurabilityConfig{
				Dir:             *dataDir,
				Sync:            policy,
				SyncInterval:    *walSyncEvery,
				SegmentBytes:    *walSegBytes,
				CheckpointEvery: *checkpointEvery,
				OnError:         func(err error) { fmt.Fprintf(os.Stderr, "kgaqd: durability: %v\n", err) },
			}, g, epoch)
			if err != nil {
				fail("recover %s: %v", *dataDir, err)
			}
			rec := d.Stats().Recovery
			fmt.Fprintf(os.Stderr, "kgaqd: recovered %s: checkpoint epoch %d, %d replayed, epoch %d\n",
				*dataDir, rec.CheckpointEpoch, rec.Replayed, d.Store().Epoch())
			if *checkpointEvery > 0 {
				defer d.StartCheckpointer(ctx)()
			}
			dur = d
			store = d.Store()
		} else {
			store = live.NewStore(g, epoch)
		}
		eng, err := core.NewLiveEngine(store, model, opts)
		if err != nil {
			fail("%v", err)
		}
		stopCompactor := store.StartCompactor(ctx, live.CompactorConfig{
			Interval: *compactEvery,
			MinDelta: *compactMin,
			OnError:  func(err error) { fmt.Fprintf(os.Stderr, "kgaqd: compactor: %v\n", err) },
		})
		defer stopCompactor()
		api = httpapi.NewLiveServer(eng, store)
		if dur != nil {
			api.ConfigureDurability(dur)
		}
	}
	api.ConfigurePlans(*planCap, *planTTL)
	api.ConfigureTracing(*traceRing, *traceSample)
	ctrl := admission.New(admission.Config{
		MaxInFlight:     *maxInFlight,
		MaxQueue:        *queueDepth,
		PerClientRate:   *clientRate,
		PerClientBurst:  *clientBurst,
		DegradePressure: *degradePressure,
		MaxErrorBound:   *maxEB,
		SLOTargetP99:    *sloP99,
	})
	api.ConfigureAdmission(ctrl, *clientHeader)
	api.ConfigureBuild(buildinfo.Get("kgaqd"))
	if *fedMembers != "" || *fedMembersFile != "" {
		if *fedMembers != "" && *fedMembersFile != "" {
			fail("-federate-members and -federate-members-file are mutually exclusive")
		}
		var members []federate.Member
		if *fedMembers != "" {
			members, err = federate.ParseMembers(*fedMembers)
		} else {
			var data []byte
			if data, err = os.ReadFile(*fedMembersFile); err == nil {
				members, err = federate.ReadMembersFile(string(data))
			}
		}
		if err != nil {
			fail("%v", err)
		}
		coord, err := federate.New(federate.Config{
			Members:       members,
			MemberTimeout: *fedTimeout,
			Retries:       *fedRetries,
			HedgeAfter:    *fedHedge,
		}, opts)
		if err != nil {
			fail("%v", err)
		}
		api.ConfigureFederation(coord)
		fmt.Fprintf(os.Stderr, "kgaqd: coordinating a federation of %d member(s)\n", len(members))
	}
	if *accessLog {
		api.ConfigureLogging(slog.New(slog.NewJSONHandler(os.Stderr, nil)))
	}
	if *debugAddr != "" {
		// The debug mux (pprof, /metrics, /debug/trace, state snapshots)
		// lives on its own listener so operational endpoints never share a
		// port with query traffic.
		dbg := &http.Server{Addr: *debugAddr, Handler: api.DebugHandler()}
		go func() {
			fmt.Fprintf(os.Stderr, "kgaqd: debug endpoints on %s\n", *debugAddr)
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "kgaqd: debug server: %v\n", err)
			}
		}()
		defer dbg.Close()
	}

	srv := &http.Server{
		Addr:    *addr,
		Handler: api.Handler(),
		// Request contexts descend from the signal context, so a drain
		// cancels in-flight queries mid-refinement.
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	done := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "kgaqd: serving %s on %s\n", g, *addr)
		done <- srv.ListenAndServe()
	}()

	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "kgaqd: draining...")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		// Admission drains first — queued requests shed with 503 "draining"
		// and in-flight ones finish — then the listener closes.
		if err := api.Drain(shutdownCtx); err != nil {
			fmt.Fprintf(os.Stderr, "kgaqd: drain: %v\n", err)
		}
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fail("shutdown: %v", err)
		}
		<-done
		// Last: sync the WAL and fold the final state into a checkpoint so
		// the next boot replays nothing.
		if dur != nil {
			if err := dur.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "kgaqd: durability close: %v\n", err)
			}
		}
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fail("%v", err)
		}
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "kgaqd: "+format+"\n", args...)
	os.Exit(1)
}
