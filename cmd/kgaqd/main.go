// Command kgaqd serves approximate aggregate queries over HTTP/JSON: one
// engine, shared by all requests, exercised under real concurrency through
// the context-aware execution API.
//
//	kgaqd -profile tiny -addr :8080
//	kgaqd -graph data/dbpedia-sim.graph -emb data/dbpedia-sim.emb
//
//	curl -s localhost:8080/v1/query -d '{
//	  "query": "AVG(price) MATCH (g:Country name=Country_0)-[product]->(c:Automobile) TARGET c",
//	  "error_bound": 0.05, "timeout_ms": 2000
//	}'
//
// Per-request overrides (error_bound, confidence, tau, seed, max_draws,
// sampler, timeout_ms) map 1:1 onto the engine's QueryOptions; "stream":
// true switches the response to NDJSON with one line per refinement round.
// SIGINT/SIGTERM drain gracefully: in-flight queries are cancelled through
// their contexts and report partial results before the listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"kgaq/internal/cmdutil"
	"kgaq/internal/core"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	graphPath := flag.String("graph", "", "graph snapshot (from kgen)")
	embPath := flag.String("emb", "", "embedding snapshot (from kgen)")
	profile := flag.String("profile", "", "generate a profile instead of loading files")
	eb := flag.Float64("eb", 0.01, "default relative error bound")
	conf := flag.Float64("conf", 0.95, "default confidence level")
	tau := flag.Float64("tau", 0, "default similarity threshold (0 = profile default / 0.85)")
	seed := flag.Int64("seed", 1, "default engine seed")
	grace := flag.Duration("grace", 5*time.Second, "shutdown grace period")
	cacheBytes := flag.Int64("cache-bytes", 0, "answer-space cache bound in bytes (0 = default, negative = disabled)")
	debugAddr := flag.String("debug-addr", "", "serve pprof and cache counters on this address (e.g. localhost:6060; empty = disabled)")
	flag.Parse()

	g, model, err := cmdutil.LoadGraphModel(*graphPath, *embPath, *profile, tau)
	if err != nil {
		fail("%v", err)
	}
	eng, err := core.NewEngine(g, model, core.Options{
		ErrorBound: *eb, Confidence: *conf, Tau: *tau, Seed: *seed,
		CacheMaxBytes: *cacheBytes,
	})
	if err != nil {
		fail("%v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	api := NewServer(eng)
	if *debugAddr != "" {
		// The debug mux (pprof + cache counters) lives on its own listener
		// so operational endpoints never share a port with query traffic.
		dbg := &http.Server{Addr: *debugAddr, Handler: api.DebugHandler()}
		go func() {
			fmt.Fprintf(os.Stderr, "kgaqd: debug endpoints on %s\n", *debugAddr)
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "kgaqd: debug server: %v\n", err)
			}
		}()
		defer dbg.Close()
	}

	srv := &http.Server{
		Addr:    *addr,
		Handler: api.Handler(),
		// Request contexts descend from the signal context, so a drain
		// cancels in-flight queries mid-refinement.
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	done := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "kgaqd: serving %s on %s\n", g, *addr)
		done <- srv.ListenAndServe()
	}()

	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "kgaqd: draining...")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fail("shutdown: %v", err)
		}
		<-done
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fail("%v", err)
		}
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "kgaqd: "+format+"\n", args...)
	os.Exit(1)
}
