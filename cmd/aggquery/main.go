// Command aggquery runs aggregate queries interactively against a graph +
// embedding pair (as produced by kgen) or against a freshly generated
// profile, using the textual query language:
//
//	aggquery -profile tiny \
//	  -q 'AVG(price) MATCH (g:Country name=Country_0)-[product]->(c:Automobile) TARGET c'
//
// Without -q it reads one query per line from stdin. The -eb flag sets the
// relative error bound; -refine re-runs the query while tightening eb so
// the interactive refinement of §IV-C is visible.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"kgaq/internal/buildinfo"
	"kgaq/internal/cmdutil"
	"kgaq/internal/core"
	"kgaq/internal/query"
)

func main() {
	graphPath := flag.String("graph", "", "graph snapshot or textual dump (formats auto-detected)")
	embPath := flag.String("emb", "", "embedding snapshot (from kgen)")
	profile := flag.String("profile", "", "generate a profile instead of loading files")
	q := flag.String("q", "", "query text (default: read lines from stdin)")
	eb := flag.Float64("eb", 0.01, "relative error bound")
	conf := flag.Float64("conf", 0.95, "confidence level")
	tau := flag.Float64("tau", 0, "similarity threshold (0 = profile default / 0.85)")
	refine := flag.Bool("refine", false, "start at eb=5% and tighten to -eb")
	seed := flag.Int64("seed", 1, "engine seed")
	timeout := flag.Duration("timeout", 0, "per-query deadline (0 = none); expired queries report their partial estimate")
	version := flag.Bool("version", false, "print build provenance and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Get("aggquery"))
		return
	}
	buildinfo.Register("aggquery")

	g, model, _, err := cmdutil.LoadGraphModel(*graphPath, *embPath, *profile, tau)
	if err != nil {
		fail("%v", err)
	}
	eng, err := core.NewEngine(g, model, core.Options{
		ErrorBound: *eb, Confidence: *conf, Tau: *tau, Seed: *seed,
	})
	if err != nil {
		fail("%v", err)
	}
	fmt.Fprintf(os.Stderr, "loaded %s\n", g)

	run := func(text string) {
		agg, err := query.Parse(text)
		if err != nil {
			fmt.Fprintf(os.Stderr, "parse: %v\n", err)
			return
		}
		// ^C cancels this query mid-refinement instead of killing the
		// process; the registration is released when the query returns, so
		// ^C at the prompt (or a second ^C) terminates as usual.
		qctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		if *timeout > 0 {
			var cancel context.CancelFunc
			qctx, cancel = context.WithTimeout(qctx, *timeout)
			defer cancel()
		}
		if *refine {
			x, err := eng.Start(qctx, agg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "start: %v\n", err)
				return
			}
			for _, step := range []float64{0.05, 0.04, 0.03, 0.02, *eb} {
				begin := time.Now()
				res, err := x.Refine(qctx, step)
				if core.IsPartial(err, res) {
					fmt.Fprintf(os.Stderr, "interrupted — reporting partial estimate: %v\n", err)
				} else if err != nil {
					fmt.Fprintf(os.Stderr, "refine(eb=%.2f): %v\n", step, err)
					return
				}
				fmt.Printf("eb=%.0f%%: %s  |S|=%d  (+%.1fms)\n",
					step*100, res.Interval(), res.SampleSize,
					float64(time.Since(begin).Microseconds())/1000)
				if err != nil {
					return
				}
			}
			return
		}
		begin := time.Now()
		res, err := eng.Query(qctx, agg)
		if core.IsPartial(err, res) {
			fmt.Fprintf(os.Stderr, "interrupted — reporting partial estimate: %v\n", err)
		} else if err != nil {
			fmt.Fprintf(os.Stderr, "query: %v\n", err)
			return
		}
		elapsed := time.Since(begin)
		fmt.Printf("%s\n", agg)
		fmt.Printf("  estimate: %s\n", res.Interval())
		fmt.Printf("  rounds: %d  sample: %d draws / %d distinct (of %d candidates)\n",
			len(res.Rounds), res.SampleSize, res.Distinct, res.Candidates)
		fmt.Printf("  converged: %v  time: %.1fms (S1 %.1f / S2 %.1f / S3 %.1f)\n",
			res.Converged, float64(elapsed.Microseconds())/1000,
			ms(res.Times.Sampling), ms(res.Times.Estimation), ms(res.Times.Guarantee))
		if res.Groups != nil {
			labels := make([]string, 0, len(res.Groups))
			for l := range res.Groups {
				labels = append(labels, l)
			}
			sort.Strings(labels)
			for _, l := range labels {
				gr := res.Groups[l]
				fmt.Printf("  group %-10s %.2f ± %.2f (%d draws)\n", l, gr.Estimate, gr.MoE, gr.Draws)
			}
		}
	}

	if *q != "" {
		run(*q)
		return
	}
	sc := bufio.NewScanner(os.Stdin)
	fmt.Fprint(os.Stderr, "> ")
	for sc.Scan() {
		line := sc.Text()
		if line != "" {
			run(line)
		}
		fmt.Fprint(os.Stderr, "> ")
	}
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "aggquery: "+format+"\n", args...)
	os.Exit(1)
}
