// Command kgen generates the synthetic evaluation datasets: a knowledge
// graph snapshot, an oracle embedding snapshot, and the query workload with
// ground truth, for any of the built-in profiles (dbpedia-sim,
// freebase-sim, yago2-sim, tiny).
//
// Usage:
//
//	kgen -profile dbpedia-sim -out ./data
//	kgen -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"kgaq/internal/datagen"
	"kgaq/internal/embedding"
)

func main() {
	profile := flag.String("profile", "dbpedia-sim", "dataset profile to generate")
	out := flag.String("out", ".", "output directory")
	list := flag.Bool("list", false, "list available profiles and exit")
	tsv := flag.Bool("tsv", false, "also write nodes.tsv / edges.tsv")
	flag.Parse()

	if *list {
		for _, p := range append(datagen.Profiles(), datagen.TinyProfile()) {
			fmt.Printf("%-14s countries=%d scale=%d optimal-τ=%.2f\n",
				p.Name, p.Countries, p.Scale, p.OptimalTau)
		}
		return
	}

	p, ok := datagen.ProfileByName(*profile)
	if !ok {
		fail("unknown profile %q (try -list)", *profile)
	}
	ds, err := datagen.Generate(p)
	if err != nil {
		fail("generate: %v", err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fail("mkdir: %v", err)
	}

	graphPath := filepath.Join(*out, p.Name+".graph")
	if err := ds.Graph.SaveFile(graphPath); err != nil {
		fail("save graph: %v", err)
	}
	embPath := filepath.Join(*out, p.Name+".emb")
	if err := embedding.SaveFile(embPath, ds.Model); err != nil {
		fail("save embedding: %v", err)
	}

	// Workload with ground truth as JSON for external tooling.
	type jsonQuery struct {
		ID        string   `json:"id"`
		Category  string   `json:"category"`
		Shape     string   `json:"shape"`
		Text      string   `json:"query"`
		HAAnswers []string `json:"ha_answers"`
		HAValue   float64  `json:"ha_value"`
	}
	var queries []jsonQuery
	for _, q := range ds.Queries {
		hv, err := ds.HAValue(q)
		if err != nil {
			continue
		}
		queries = append(queries, jsonQuery{
			ID: q.ID, Category: q.Category, Shape: q.Shape.String(),
			Text: q.Agg.String(), HAAnswers: q.HAAnswers, HAValue: hv,
		})
	}
	wlPath := filepath.Join(*out, p.Name+".workload.json")
	wf, err := os.Create(wlPath)
	if err != nil {
		fail("create workload: %v", err)
	}
	enc := json.NewEncoder(wf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(queries); err != nil {
		fail("write workload: %v", err)
	}
	if err := wf.Close(); err != nil {
		fail("close workload: %v", err)
	}

	if *tsv {
		nf, err := os.Create(filepath.Join(*out, p.Name+".nodes.tsv"))
		if err != nil {
			fail("create nodes.tsv: %v", err)
		}
		ef, err := os.Create(filepath.Join(*out, p.Name+".edges.tsv"))
		if err != nil {
			fail("create edges.tsv: %v", err)
		}
		if err := ds.Graph.WriteTSV(nf, ef); err != nil {
			fail("write tsv: %v", err)
		}
		nf.Close()
		ef.Close()
	}

	fmt.Printf("%s: %s\n", p.Name, ds.Graph)
	fmt.Printf("  graph:    %s\n", graphPath)
	fmt.Printf("  emb:      %s\n", embPath)
	fmt.Printf("  workload: %s (%d queries)\n", wlPath, len(queries))
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "kgen: "+format+"\n", args...)
	os.Exit(1)
}
