// Command kgen generates the synthetic evaluation datasets: a knowledge
// graph snapshot, an oracle embedding snapshot, and the query workload with
// ground truth, for any of the built-in profiles (dbpedia-sim,
// freebase-sim, yago2-sim, tiny).
//
// Usage:
//
//	kgen -profile dbpedia-sim -out ./data
//	kgen -list
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"kgaq/internal/buildinfo"
	"kgaq/internal/datagen"
	"kgaq/internal/embedding"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return // -h/-help printed usage; that is a success
		}
		fmt.Fprintf(os.Stderr, "kgen: %v\n", err)
		os.Exit(1)
	}
}

// run is the whole generator behind a testable seam: flags in, files and
// summary out.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("kgen", flag.ContinueOnError)
	profile := fs.String("profile", "dbpedia-sim", "dataset profile to generate")
	out := fs.String("out", ".", "output directory")
	list := fs.Bool("list", false, "list available profiles and exit")
	tsv := fs.Bool("tsv", false, "also write nodes.tsv / edges.tsv")
	version := fs.Bool("version", false, "print build provenance and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(stdout, buildinfo.Get("kgen"))
		return nil
	}
	buildinfo.Register("kgen")

	if *list {
		for _, p := range append(datagen.Profiles(), datagen.TinyProfile()) {
			fmt.Fprintf(stdout, "%-14s countries=%d scale=%d optimal-τ=%.2f\n",
				p.Name, p.Countries, p.Scale, p.OptimalTau)
		}
		return nil
	}

	p, ok := datagen.ProfileByName(*profile)
	if !ok {
		return fmt.Errorf("unknown profile %q (try -list)", *profile)
	}
	ds, err := datagen.Generate(p)
	if err != nil {
		return fmt.Errorf("generate: %w", err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return fmt.Errorf("mkdir: %w", err)
	}

	graphPath := filepath.Join(*out, p.Name+".graph")
	if err := ds.Graph.SaveFile(graphPath); err != nil {
		return fmt.Errorf("save graph: %w", err)
	}
	embPath := filepath.Join(*out, p.Name+".emb")
	if err := embedding.SaveFile(embPath, ds.Model); err != nil {
		return fmt.Errorf("save embedding: %w", err)
	}

	// Workload with ground truth as JSON for external tooling.
	type jsonQuery struct {
		ID        string   `json:"id"`
		Category  string   `json:"category"`
		Shape     string   `json:"shape"`
		Text      string   `json:"query"`
		HAAnswers []string `json:"ha_answers"`
		HAValue   float64  `json:"ha_value"`
	}
	var queries []jsonQuery
	for _, q := range ds.Queries {
		hv, err := ds.HAValue(q)
		if err != nil {
			continue
		}
		queries = append(queries, jsonQuery{
			ID: q.ID, Category: q.Category, Shape: q.Shape.String(),
			Text: q.Agg.String(), HAAnswers: q.HAAnswers, HAValue: hv,
		})
	}
	wlPath := filepath.Join(*out, p.Name+".workload.json")
	wf, err := os.Create(wlPath)
	if err != nil {
		return fmt.Errorf("create workload: %w", err)
	}
	enc := json.NewEncoder(wf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(queries); err != nil {
		wf.Close()
		return fmt.Errorf("write workload: %w", err)
	}
	if err := wf.Close(); err != nil {
		return fmt.Errorf("close workload: %w", err)
	}

	if *tsv {
		nf, err := os.Create(filepath.Join(*out, p.Name+".nodes.tsv"))
		if err != nil {
			return fmt.Errorf("create nodes.tsv: %w", err)
		}
		ef, err := os.Create(filepath.Join(*out, p.Name+".edges.tsv"))
		if err != nil {
			nf.Close()
			return fmt.Errorf("create edges.tsv: %w", err)
		}
		if err := ds.Graph.WriteTSV(nf, ef); err != nil {
			nf.Close()
			ef.Close()
			return fmt.Errorf("write tsv: %w", err)
		}
		nf.Close()
		ef.Close()
	}

	fmt.Fprintf(stdout, "%s: %s\n", p.Name, ds.Graph)
	fmt.Fprintf(stdout, "  graph:    %s\n", graphPath)
	fmt.Fprintf(stdout, "  emb:      %s\n", embPath)
	fmt.Fprintf(stdout, "  workload: %s (%d queries)\n", wlPath, len(queries))
	return nil
}
