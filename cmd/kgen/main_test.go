package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kgaq/internal/cmdutil"
	"kgaq/internal/datagen"
	"kgaq/internal/kg"
)

// Generation is deterministic per profile seed, so the summary output is a
// golden string up to the temp directory prefix.
func TestKgenGoldenOutput(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-profile", "tiny", "-out", dir, "-tsv"}, &out); err != nil {
		t.Fatal(err)
	}

	ds, err := datagen.Generate(datagen.TinyProfile())
	if err != nil {
		t.Fatal(err)
	}
	workload := 0
	for _, q := range ds.Queries {
		if _, err := ds.HAValue(q); err == nil {
			workload++
		}
	}
	golden := fmt.Sprintf("tiny: %s\n  graph:    %s\n  emb:      %s\n  workload: %s (%d queries)\n",
		ds.Graph,
		filepath.Join(dir, "tiny.graph"),
		filepath.Join(dir, "tiny.emb"),
		filepath.Join(dir, "tiny.workload.json"),
		workload)
	if out.String() != golden {
		t.Fatalf("output:\n%s\nwant:\n%s", out.String(), golden)
	}

	for _, name := range []string{"tiny.graph", "tiny.emb", "tiny.workload.json", "tiny.nodes.tsv", "tiny.edges.tsv"} {
		if fi, err := os.Stat(filepath.Join(dir, name)); err != nil || fi.Size() == 0 {
			t.Fatalf("%s missing or empty (%v)", name, err)
		}
	}

	// The workload JSON parses and is non-trivial.
	data, err := os.ReadFile(filepath.Join(dir, "tiny.workload.json"))
	if err != nil {
		t.Fatal(err)
	}
	var queries []map[string]any
	if err := json.Unmarshal(data, &queries); err != nil {
		t.Fatal(err)
	}
	if len(queries) != workload {
		t.Fatalf("workload has %d queries, want %d", len(queries), workload)
	}
}

// The generated artefacts must round-trip through the shared CLI loader —
// both the binary snapshot pair and the TSV dump.
func TestKgenLoaderRoundTrip(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-profile", "tiny", "-out", dir, "-tsv"}, &out); err != nil {
		t.Fatal(err)
	}
	ds, err := datagen.Generate(datagen.TinyProfile())
	if err != nil {
		t.Fatal(err)
	}

	tau := 0.0
	g, m, epoch, err := cmdutil.LoadGraphModel(
		filepath.Join(dir, "tiny.graph"), filepath.Join(dir, "tiny.emb"), "", &tau)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 0 {
		t.Fatalf("fresh snapshot at epoch %d, want 0", epoch)
	}
	if g.NumNodes() != ds.Graph.NumNodes() || g.NumEdges() != ds.Graph.NumEdges() {
		t.Fatalf("snapshot round trip: %v, generated %v", g, ds.Graph)
	}
	if m.Dim() != ds.Model.Dim() {
		t.Fatalf("embedding dim %d, want %d", m.Dim(), ds.Model.Dim())
	}

	// TSV pair loads through the same auto-detecting loader, from either
	// member's path.
	for _, entry := range []string{"tiny.nodes.tsv", "tiny.edges.tsv"} {
		gt, _, err := cmdutil.LoadGraph(filepath.Join(dir, entry))
		if err != nil {
			t.Fatalf("%s: %v", entry, err)
		}
		if gt.NumNodes() != ds.Graph.NumNodes() || gt.NumEdges() != ds.Graph.NumEdges() {
			t.Fatalf("tsv round trip via %s: %v, generated %v", entry, gt, ds.Graph)
		}
		// Predicate ids must survive the textual round trip — the saved
		// embedding indexes its vectors by PredID, so a reordering would
		// silently misalign semantics.
		if gt.NumPredicates() != ds.Graph.NumPredicates() {
			t.Fatalf("tsv round trip changed predicate count")
		}
		for p := 0; p < gt.NumPredicates(); p++ {
			if gt.PredName(kg.PredID(p)) != ds.Graph.PredName(kg.PredID(p)) {
				t.Fatalf("tsv round trip moved predicate %d: %q vs %q",
					p, gt.PredName(kg.PredID(p)), ds.Graph.PredName(kg.PredID(p)))
			}
		}
	}
}

func TestKgenErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-profile", "no-such-profile"}, &out); err == nil ||
		!strings.Contains(err.Error(), "unknown profile") {
		t.Fatalf("err = %v, want unknown profile", err)
	}
	out.Reset()
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "tiny") || !strings.Contains(out.String(), "dbpedia-sim") {
		t.Fatalf("-list output missing profiles:\n%s", out.String())
	}
}
