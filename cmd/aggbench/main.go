// Command aggbench reproduces the paper's evaluation artefacts: one
// experiment id per table/figure of §VII, printed in the paper's row
// layout.
//
// Usage:
//
//	aggbench -exp table6                # one experiment, full profiles
//	aggbench -exp all -quick            # every experiment on the tiny set
//	aggbench -trajectory BENCH_PR8.json # write the hot-path baseline
//	aggbench -gate BENCH_PR8.json       # fresh trajectory vs committed baseline
//	aggbench -list
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"kgaq/internal/bench"
	"kgaq/internal/buildinfo"
	"kgaq/internal/datagen"
)

func main() {
	exp := flag.String("exp", "", "experiment id (see -list), or 'all'")
	list := flag.Bool("list", false, "list experiment ids and exit")
	quick := flag.Bool("quick", false, "tiny dataset, two queries per bucket")
	per := flag.Int("per", 0, "queries per bucket (0 = default)")
	profile := flag.String("profile", "", "restrict to one dataset profile")
	seed := flag.Int64("seed", 1, "engine seed")
	trajectory := flag.String("trajectory", "", "measure the hot-path baseline and write it to this JSON file")
	trajectoryLabel := flag.String("trajectory-label", "PR10", "label recorded in the trajectory file")
	gate := flag.String("gate", "", "measure a fresh trajectory and fail when it regresses past this committed baseline JSON")
	gateTol := flag.Float64("gate-tolerance", -1, "relative regression tolerance for -gate (0.5 = fresh may be up to 1.5x baseline); negative derives it from the baseline's recorded runner noise")
	version := flag.Bool("version", false, "print build provenance and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Get("aggbench"))
		return
	}
	buildinfo.Register("aggbench")

	if *list {
		for _, id := range bench.ExperimentIDs() {
			fmt.Println(id)
		}
		return
	}
	if *exp == "" && *trajectory == "" && *gate == "" {
		fmt.Fprintln(os.Stderr, "aggbench: -exp, -trajectory or -gate required (see -list)")
		os.Exit(2)
	}

	// ^C cancels in-flight experiment queries so partial suites exit fast.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := bench.Config{Seed: *seed}
	if *quick {
		cfg = bench.QuickConfig()
		cfg.Seed = *seed
	}
	cfg.Ctx = ctx
	if *per > 0 {
		cfg.PerCategory = *per
	}
	if *profile != "" {
		p, ok := datagen.ProfileByName(*profile)
		if !ok {
			fmt.Fprintf(os.Stderr, "aggbench: unknown profile %q\n", *profile)
			os.Exit(2)
		}
		cfg.Profiles = []datagen.Profile{p}
	}

	if *trajectory != "" || *gate != "" {
		// The baseline always runs on the tiny profile unless one was
		// chosen explicitly, so successive PRs measure the same workload.
		tcfg := cfg
		if *profile == "" {
			tcfg.Profiles = []datagen.Profile{datagen.TinyProfile()}
		}
		if *trajectory != "" {
			if err := bench.WriteTrajectory(os.Stdout, tcfg, *trajectoryLabel, *trajectory); err != nil {
				fmt.Fprintf(os.Stderr, "aggbench: trajectory: %v\n", err)
				os.Exit(1)
			}
		}
		if *gate != "" {
			if err := bench.Gate(os.Stdout, tcfg, *gate, *gateTol); err != nil {
				fmt.Fprintf(os.Stderr, "aggbench: gate: %v\n", err)
				os.Exit(1)
			}
		}
		if *exp == "" {
			return
		}
	}

	reg := bench.Registry()
	ids := []string{*exp}
	if *exp == "all" {
		ids = bench.ExperimentIDs()
	}
	for _, id := range ids {
		runner, ok := reg[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "aggbench: unknown experiment %q (see -list)\n", id)
			os.Exit(2)
		}
		begin := time.Now()
		if err := runner(os.Stdout, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "aggbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		// A ^C mid-table leaves that table full of dashes; do not report it
		// as completed or roll on to the remaining experiments.
		if ctx.Err() != nil {
			fmt.Fprintf(os.Stderr, "aggbench: %s interrupted\n", id)
			os.Exit(130)
		}
		fmt.Printf("[%s completed in %.1fs]\n\n", id, time.Since(begin).Seconds())
	}
}
