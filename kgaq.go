// Package kgaq is an approximate aggregate-query engine for knowledge
// graphs, reproducing "Aggregate Queries on Knowledge Graphs: Fast
// Approximation with Semantic-aware Sampling" (ICDE 2022).
//
// Given a schema-flexible knowledge graph, an offline KG embedding and an
// aggregate query such as "the average price of cars produced in Germany",
// kgaq returns an approximate answer with a confidence-interval accuracy
// guarantee in milliseconds, instead of the seconds an exact graph-matching
// engine needs — and without missing the semantically equivalent answers an
// exact-schema (SPARQL) engine ignores.
//
// # Quick start
//
//	g, errs := kgaq.LoadNTriplesFile("facts.nt")
//	model, _ := kgaq.TrainEmbedding("TransE", g, kgaq.DefaultTrainConfig())
//	engine, _ := kgaq.NewEngine(g, model, kgaq.Options{ErrorBound: 0.01})
//	q := kgaq.SimpleQuery(kgaq.Avg, "price", "Germany", "Country", "product", "Automobile")
//	res, _ := engine.Query(ctx, q, kgaq.WithErrorBound(0.02))
//	fmt.Printf("AVG = %.2f ± %.2f (95%%)\n", res.Estimate, res.MoE)
//
// Query honours ctx cancellation and deadlines mid-refinement (a cancelled
// query returns its partial estimate plus ErrInterrupted), QueryOptions
// override any engine knob per query, the OnRound option streams refinement
// progress live, and one Engine safely serves any number of concurrent
// queries (QueryBatch runs a whole workload over a worker pool, sharing
// one answer-space build across same-graph queries).
//
// Heavy repeat traffic should split compilation from execution:
// Engine.Prepare compiles a query once into a concurrency-safe *Prepared
// (resolution, shape classification, walk convergence, alias tables, shard
// split), and Prepared.Query / Prepared.QueryMulti execute it any number
// of times. QueryMulti evaluates several aggregates — e.g. COUNT, SUM and
// AVG of one query graph — over a single shared sample, refining until
// every guaranteed aggregate meets its error bound.
// Options.Shards / WithShards switches a query to sharded execution: the
// candidate-answer space is hash-partitioned into ownership strata, sampled
// per shard, and merged through a stratified Horvitz–Thompson combiner
// (see DESIGN.md "Sharded execution"). The kgaqd command wraps the engine
// in an HTTP/JSON service.
//
// The pipeline is the paper's Algorithm 2: a semantic-aware random walk
// over the n-bounded subgraph around the query's specific entity collects a
// sample of candidate answers biased toward semantic similarity;
// Horvitz–Thompson estimators with greedy correctness validation produce an
// unbiased COUNT/SUM (consistent AVG) estimate; the Central Limit Theorem
// with Bag-of-Little-Bootstraps variance yields a confidence interval that
// is iteratively tightened until the user's relative error bound holds.
// Filters, GROUP-BY, MAX/MIN (without guarantee) and chain / star / cycle /
// flower query shapes are supported (§V extensions).
//
// The facade re-exports the stable surface of the internal packages; see
// DESIGN.md for the full architecture.
package kgaq

import (
	"errors"
	"fmt"
	"io"

	"kgaq/internal/core"
	"kgaq/internal/datagen"
	"kgaq/internal/embedding"
	"kgaq/internal/kg"
	"kgaq/internal/live"
	"kgaq/internal/query"
)

// Graph is an immutable in-memory knowledge graph.
type Graph = kg.Graph

// GraphBuilder assembles a Graph programmatically.
type GraphBuilder = kg.Builder

// NodeID identifies a graph node.
type NodeID = kg.NodeID

// NTOptions configures the N-Triples loader.
type NTOptions = kg.NTOptions

// NewGraphBuilder returns an empty graph builder.
func NewGraphBuilder() *GraphBuilder { return kg.NewBuilder() }

// LoadNTriplesFile loads a pragmatic N-Triples subset from disk; see
// internal/kg for the accepted grammar. Malformed lines are reported in the
// error slice while the rest of the file still loads.
func LoadNTriplesFile(path string) (*Graph, []error) {
	return kg.LoadNTriplesFile(path, kg.NTOptions{})
}

// ReadNTriples loads the N-Triples subset from a reader.
func ReadNTriples(r io.Reader, opts NTOptions) (*Graph, []error) {
	return kg.ReadNTriples(r, opts)
}

// LoadGraphSnapshot reads a binary snapshot written by SaveGraphSnapshot.
func LoadGraphSnapshot(path string) (*Graph, error) { return kg.LoadFile(path) }

// SaveGraphSnapshot writes a binary graph snapshot.
func SaveGraphSnapshot(path string, g *Graph) error { return g.SaveFile(path) }

// EmbeddingModel supplies per-predicate semantic vectors.
type EmbeddingModel = embedding.Model

// TrainConfig tunes embedding training.
type TrainConfig = embedding.TrainConfig

// TrainedEmbedding is a trained embedding model (also a link scorer).
type TrainedEmbedding = embedding.Trained

// DefaultTrainConfig returns sensible embedding-training defaults.
func DefaultTrainConfig() TrainConfig { return embedding.DefaultTrainConfig() }

// TrainEmbedding fits one of TransE, TransH, TransD, RESCAL or SE to the
// graph's triples by SGD with negative sampling.
func TrainEmbedding(model string, g *Graph, cfg TrainConfig) (*TrainedEmbedding, error) {
	return embedding.Train(model, g, cfg)
}

// EmbeddingModelNames lists the trainable embedding models.
func EmbeddingModelNames() []string { return embedding.ModelNames() }

// LoadEmbedding reads an embedding snapshot from disk.
func LoadEmbedding(path string) (EmbeddingModel, error) {
	m, err := embedding.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return m, nil
}

// SaveEmbedding writes an embedding snapshot.
func SaveEmbedding(path string, m EmbeddingModel) error {
	return embedding.SaveFile(path, m)
}

// AggFunc is an aggregate function.
type AggFunc = query.AggFunc

// Aggregate functions. COUNT, SUM and AVG carry the accuracy guarantee;
// MAX and MIN are answered without one.
const (
	Count = query.Count
	Sum   = query.Sum
	Avg   = query.Avg
	Max   = query.Max
	Min   = query.Min
)

// AggregateQuery is a full aggregate query over a knowledge graph.
type AggregateQuery = query.Aggregate

// QueryHop is one step of a chain-shaped query.
type QueryHop = query.Hop

// QueryBuilder assembles arbitrary-shape query graphs.
type QueryBuilder = query.Builder

// SimpleQuery builds the canonical simple aggregate query: a named specific
// entity connected to a typed target by one predicate.
func SimpleQuery(f AggFunc, attr, specificName, specificType, predicate, targetType string) *AggregateQuery {
	return query.Simple(f, attr, specificName, specificType, predicate, targetType)
}

// ChainQuery builds a chain-shaped query: specific entity, then hops
// through typed unknowns, ending at the target.
func ChainQuery(f AggFunc, attr, specificName, specificType string, hops []QueryHop) *AggregateQuery {
	return query.Chain(f, attr, specificName, specificType, hops)
}

// NewQueryBuilder returns a builder for star/cycle/flower query graphs.
func NewQueryBuilder() *QueryBuilder { return query.NewBuilder() }

// ParseQuery parses the textual query language, e.g.
//
//	AVG(price) MATCH (g:Country name=Germany)-[product]->(c:Automobile) TARGET c
func ParseQuery(input string) (*AggregateQuery, error) { return query.Parse(input) }

// Options carries the engine knobs; zero values mean the paper's defaults
// (τ=0.85, eb=1%, 95% confidence, n=3, r=3, λ=0.3).
type Options = core.Options

// Engine executes aggregate queries over one graph + embedding pair. It is
// safe for concurrent use: run Engine.Query from as many goroutines as you
// like, or hand a whole workload to Engine.QueryBatch.
type Engine = core.Engine

// Execution is a started query whose sample can be refined interactively
// (Engine.Start + Execution.Refine). A single Execution must not be shared
// across goroutines.
type Execution = core.Execution

// Prepared is a compiled query plan (Engine.Prepare): name resolution,
// shape classification, filter/attribute binding and the full answer-space
// build happen once; Query/Start/QueryMulti on the plan skip straight to
// drawing the sample. A Prepared is safe for concurrent use. See
// DESIGN.md "Prepared plans".
type Prepared = core.Prepared

// PlanInfo is a prepared plan's introspection metadata (Prepared.Plan):
// shape, hop bound, strata, candidate count, epoch pin and build-cache
// counters.
type PlanInfo = core.PlanInfo

// EpochPolicy selects how a prepared plan follows a live graph's epochs
// (WithEpochPolicy): EpochPin freezes the Prepare-time snapshot, EpochRepin
// re-pins and rebuilds as the graph moves.
type EpochPolicy = core.EpochPolicy

// Epoch policies for prepared plans on live graphs.
const (
	EpochPin   = core.EpochPin
	EpochRepin = core.EpochRepin
)

// AggSpec names one aggregate of a multi-aggregate execution
// (Engine.QueryMulti / Prepared.QueryMulti): function, attribute, optional
// per-aggregate error bound.
type AggSpec = core.AggSpec

// AggResult is one AggSpec's outcome within a MultiResult.
type AggResult = core.AggResult

// MultiResult is the outcome of a multi-aggregate execution: one shared
// semantic-aware sample, one refinement loop, N aggregate results — the
// Eq. 7–9 estimators all feeding off a single draw stream.
type MultiResult = core.MultiResult

// Result is the outcome of a query execution.
type Result = core.Result

// Round records one refinement iteration.
type Round = core.Round

// GroupResult is a per-group outcome of a GROUP-BY query.
type GroupResult = core.GroupResult

// BatchResult pairs one Engine.QueryBatch query with its outcome.
type BatchResult = core.BatchResult

// CacheStats snapshots the engine's answer-space cache (Engine.CacheStats):
// converged stationary distributions and validation verdicts reused across
// queries. Bound the cache with Options.CacheMaxBytes (default 64 MiB,
// negative disables).
type CacheStats = core.CacheStats

// ShardStat is one shard's share of the engine's work under sharded
// execution (Options.Shards / WithShards): owned nodes, attributed sample
// draws, and mutations that landed in its territory. See Engine.ShardStats
// and DESIGN.md "Sharded execution".
type ShardStat = core.ShardStat

// SamplerKind selects the sampling algorithm (WithSampler / Options).
type SamplerKind = core.SamplerKind

// Sampling algorithms: the paper's semantic-aware walk (default) and the
// topology-only ablation baselines.
const (
	SamplerSemantic = core.SamplerSemantic
	SamplerCNARW    = core.SamplerCNARW
	SamplerNode2Vec = core.SamplerNode2Vec
)

// QueryOption overrides one engine-level option for a single Query, Start
// or QueryBatch call.
type QueryOption = core.QueryOption

// Per-query option constructors; see the core package for details.
func WithErrorBound(eb float64) QueryOption    { return core.WithErrorBound(eb) }
func WithConfidence(conf float64) QueryOption  { return core.WithConfidence(conf) }
func WithTau(tau float64) QueryOption          { return core.WithTau(tau) }
func WithSeed(seed int64) QueryOption          { return core.WithSeed(seed) }
func WithSampler(s SamplerKind) QueryOption    { return core.WithSampler(s) }
func WithMaxDraws(n int) QueryOption           { return core.WithMaxDraws(n) }
func WithMaxRounds(n int) QueryOption          { return core.WithMaxRounds(n) }
func WithHopBound(n int) QueryOption           { return core.WithHopBound(n) }
func WithLambda(l float64) QueryOption         { return core.WithLambda(l) }
func WithSkipValidation(skip bool) QueryOption { return core.WithSkipValidation(skip) }
func WithOptions(o Options) QueryOption        { return core.WithOptions(o) }
func WithParallelism(n int) QueryOption        { return core.WithParallelism(n) }
func WithMinEpoch(epoch uint64) QueryOption    { return core.WithMinEpoch(epoch) }
func WithShards(n int) QueryOption             { return core.WithShards(n) }
func WithEpochPolicy(p EpochPolicy) QueryOption {
	return core.WithEpochPolicy(p)
}
func OnRound(fn func(Round)) QueryOption { return core.OnRound(fn) }

// Sentinel errors surfaced by query execution; match with errors.Is.
var (
	// ErrUnknownEntity reports a specific entity absent from the graph.
	ErrUnknownEntity = core.ErrUnknownEntity
	// ErrUnknownType reports a query type name absent from the graph.
	ErrUnknownType = core.ErrUnknownType
	// ErrUnknownPredicate reports a query predicate absent from the graph.
	ErrUnknownPredicate = core.ErrUnknownPredicate
	// ErrUnknownAttribute reports an aggregated/filtered/grouped attribute
	// absent from the graph.
	ErrUnknownAttribute = core.ErrUnknownAttribute
	// ErrNotConverged reports that no estimable sample was obtained within
	// the round budget.
	ErrNotConverged = core.ErrNotConverged
	// ErrInterrupted reports a context cancellation or deadline mid-query;
	// it can accompany a partial Result with Converged=false.
	ErrInterrupted = core.ErrInterrupted
	// ErrEpochNotReached reports a WithMinEpoch requirement the engine's
	// graph source can never satisfy (static engines are pinned at epoch 0).
	ErrEpochNotReached = core.ErrEpochNotReached
	// ErrShardedSampler reports WithShards combined with a topology-only
	// ablation sampler (only the semantic sampler stratifies).
	ErrShardedSampler = core.ErrShardedSampler
	// ErrPlanSampler reports Engine.Prepare with a topology-only ablation
	// sampler (prepared plans require the semantic sampler).
	ErrPlanSampler = core.ErrPlanSampler
	// ErrPlanOption reports a per-execution override of an option compiled
	// into a prepared plan (sampler, shards, hop bound, τ, repeat).
	ErrPlanOption = core.ErrPlanOption
	// ErrBadAggSpec reports an invalid multi-aggregate specification.
	ErrBadAggSpec = core.ErrBadAggSpec
	// ErrUnknownProfile reports a dataset profile name that is not built in.
	ErrUnknownProfile = errors.New("kgaq: unknown dataset profile")
)

// NewEngine builds an execution engine over a static (immutable) graph.
func NewEngine(g *Graph, model EmbeddingModel, opts Options) (*Engine, error) {
	return core.NewEngine(g, model, opts)
}

// LiveStore is an epoch-versioned mutable knowledge graph: atomic mutation
// batches over a copy-on-write overlay, consistent snapshots for readers,
// and a background compactor. See internal/live and DESIGN.md "Live graphs:
// epochs and consistency".
type LiveStore = live.Store

// Mutation is one live-graph update; build with AddEntity, AddEdge,
// RemoveEdge, SetAttr and SetTypes.
type Mutation = live.Mutation

// MutationBatch is an atomically applied sequence of mutations.
type MutationBatch = live.Batch

// Mutation constructors; see the live package for semantics.
func AddEntity(name string, types ...string) Mutation { return live.AddEntity(name, types...) }
func AddEdge(src, pred, dst string) Mutation          { return live.AddEdge(src, pred, dst) }
func RemoveEdge(src, pred, dst string) Mutation       { return live.RemoveEdge(src, pred, dst) }
func SetAttr(entity, attr string, v float64) Mutation { return live.SetAttr(entity, attr, v) }
func SetTypes(entity string, types ...string) Mutation {
	return live.SetTypes(entity, types...)
}

// NewLiveStore wraps an immutable graph as a live graph at epoch 0.
func NewLiveStore(g *Graph) *LiveStore { return live.NewStore(g, 0) }

// NewLiveEngine builds an execution engine over a live store: queries run
// against epoch-consistent snapshots while mutation batches proceed, with
// selective answer-space cache invalidation. Use WithMinEpoch for
// read-your-writes.
func NewLiveEngine(store *LiveStore, model EmbeddingModel, opts Options) (*Engine, error) {
	return core.NewLiveEngine(store, model, opts)
}

// Dataset is a synthetic benchmark dataset: a schema-flexible knowledge
// graph, a matching oracle embedding, and a query workload with ground
// truth (see internal/datagen and DESIGN.md for how it mirrors the paper's
// DBpedia / Freebase / YAGO2 evaluation data).
type Dataset = datagen.Dataset

// DatasetQuery is one workload query with its human-annotation ground
// truth.
type DatasetQuery = datagen.GenQuery

// DatasetProfiles lists the built-in synthetic dataset profiles:
// dbpedia-sim, freebase-sim, yago2-sim and tiny.
func DatasetProfiles() []string {
	var out []string
	for _, p := range datagen.Profiles() {
		out = append(out, p.Name)
	}
	return append(out, datagen.TinyProfile().Name)
}

// GenerateDataset synthesises a named benchmark dataset. The returned
// dataset's Model is a ready-to-use embedding and its Queries carry
// human-annotated ground truth, so a downstream user can evaluate the
// engine end to end without external data.
func GenerateDataset(profile string) (*Dataset, error) {
	p, ok := datagen.ProfileByName(profile)
	if !ok {
		return nil, errUnknownProfile(profile)
	}
	return datagen.Generate(p)
}

// DatasetOptimalTau returns the τ threshold a profile was designed around
// (the τ* at which its Table V AJS curve peaks).
func DatasetOptimalTau(profile string) (float64, error) {
	p, ok := datagen.ProfileByName(profile)
	if !ok {
		return 0, errUnknownProfile(profile)
	}
	return p.OptimalTau, nil
}

func errUnknownProfile(profile string) error {
	return fmt.Errorf("%w %s (see DatasetProfiles)", ErrUnknownProfile, profile)
}
